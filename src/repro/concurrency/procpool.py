"""Process-parallel query execution over shared-memory columnar encodings.

The GIL caps the thread-based :meth:`XQuerySession.run_many` at roughly
serial throughput for the pure-Python DI engine.  This module adds the
process tier behind the ``procpool`` backend:

* **Shared documents, not copied documents.**  The immutable columnar
  encoding (:class:`~repro.engine.columns.IntervalColumns`) is exported
  once into a ``multiprocessing.shared_memory`` segment
  (:func:`~repro.engine.columns.export_columns`); every worker attaches
  it zero-copy.  Bignum (list-backed) relations fall back to pickling —
  correctness never depends on shareability.
* **Start-method-agnostic workers.**  The worker entry point is a
  top-level function and all state crosses the pipe explicitly, so the
  pool runs identically under ``fork``, ``spawn``, and ``forkserver``
  (``fork`` is preferred when available for its cheap startup; override
  with ``start_method=`` or ``REPRO_START_METHOD``).
* **Crash → respawn, typed.**  A worker dying mid-request surfaces as
  :class:`~repro.errors.WorkerDiedError` — a
  :class:`~repro.errors.TransientBackendError`, so the PR-3 retry /
  circuit-breaker / fallback machinery applies unchanged — and the pool
  respawns the worker (with its documents) before the error propagates,
  so a retry lands on a fresh process.
* **Cancellation and deadlines cross the boundary.**  The parent polls
  the caller's :class:`~repro.resilience.CancellationToken` while
  waiting on the pipe and kills the worker on a trip
  (:class:`~repro.errors.QueryCancelledError`); deadlines are enforced
  cooperatively by the worker's own :class:`QueryGuard` with a
  parent-side kill after ``grace_seconds`` as the hung-worker backstop.
* **Sharded scatter/gather.**  :meth:`ProcessQueryPool.ensure_sharded`
  splits a document into contiguous complete-tree shards
  (:meth:`IntervalColumns.shard`), one per worker;
  :meth:`ProcessQueryPool.scatter` runs one query on every shard
  concurrently and concatenates the per-shard forests in shard order —
  sound for root-distributive plans (see docs/CONCURRENCY.md).

All segments are unlinked by the exporting process on
``unregister_document``/``close`` — after ``session.close()`` no
``/dev/shm/repro_cols_*`` entry survives (CI asserts this).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
import traceback
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.engine.columns import (
    IntervalColumns,
    as_columns,
    export_columns,
    splice_columns,
)
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResourceBudgetError,
    WorkerDiedError,
)

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.shared_memory import SharedMemory

    from repro.compiler.plan import JoinStrategy
    from repro.resilience.guard import CancellationToken, QueryGuard
    from repro.xml.forest import Forest

logger = logging.getLogger("repro.procpool")

#: Parent-side pipe poll stride: the cancellation-token reaction time.
POLL_SECONDS = 0.05

#: Extra seconds past a query's deadline before the parent declares the
#: worker hung and kills it (the worker normally times itself out first).
DEFAULT_GRACE_SECONDS = 5.0


def default_start_method() -> str:
    """``fork`` when the platform offers it, else ``spawn``."""
    override = os.environ.get("REPRO_START_METHOD")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# -- worker process ------------------------------------------------------------

def _worker_main(conn, documents: "Mapping[tuple[str, str], tuple]") -> None:
    """One pool worker: adopt the shipped documents, answer requests.

    Top level (not a closure, not a lambda) so every start method can
    import it; all state arrives via ``documents`` and the pipe.  Replies
    are strictly one per request, so the parent's send/recv pairing is a
    protocol invariant, not a convention.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    state = _WorkerState()
    try:
        for (var, scope), payload in documents.items():
            state.adopt(var, scope, payload)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            try:
                reply = state.handle(message)
            except Exception as error:  # noqa: BLE001 - shipped to parent
                reply = ("err", _describe_error(error))
            if reply is None:  # stop
                try:
                    conn.send(("ok", None))
                except OSError:  # pragma: no cover
                    pass
                break
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _WorkerState:
    """Worker-side documents, backends, and compiled-query cache.

    Two engine backends, one per binding scope: ``full`` holds the
    replicated whole-document encodings (the fan-out tier), ``shard``
    holds this worker's shard of each sharded document (the
    scatter/gather tier) — one query text can therefore run in either
    scope without rebinding.
    """

    def __init__(self) -> None:
        from repro.backends.registry import create_backend

        self._scopes = {"full": create_backend("engine"),
                        "shard": create_backend("engine")}
        self._attached: dict[tuple[str, str], object] = {}
        self._compiled: dict[str, object] = {}

    def adopt(self, var: str, scope: str, payload: tuple) -> None:
        kind, body, width = payload
        if kind == "shm":
            attachment = body.attach()
            columns = attachment.columns
        else:  # "pickle": bignum or otherwise unshareable — already a copy
            attachment = None
            columns = body
        backend = self._scopes[scope]
        backend.invalidate(var)
        backend.adopt_encoded(var, (columns, width))
        old = self._attached.pop((var, scope), None)
        self._attached[(var, scope)] = attachment
        if scope == "full":
            # A replaced document invalidates its shards by definition;
            # the parent re-exports them on the next ensure_sharded.
            self._drop_scope(var, "shard")
        if old is not None:
            old.detach()

    def _drop_scope(self, var: str, scope: str) -> None:
        self._scopes[scope].invalidate(var)
        attachment = self._attached.pop((var, scope), None)
        if attachment is not None:
            attachment.detach()

    def handle(self, message: tuple) -> "tuple | None":
        kind = message[0]
        if kind == "query":
            return self._query(message[1])
        if kind == "doc":
            _kind, var, scope, payload = message
            self.adopt(var, scope, payload)
            return ("ok", None)
        if kind == "drop":
            for scope in self._scopes:
                self._drop_scope(message[1], scope)
            return ("ok", None)
        if kind == "warm":
            self._compile(message[1])
            return ("ok", None)
        if kind == "ping":
            return ("ok", "pong")
        if kind == "sleep":  # test hook: an unresponsive worker
            time.sleep(float(message[1]))
            return ("ok", None)
        if kind == "exit":  # test hook: a hard crash
            os._exit(int(message[1]))
        if kind == "stop":
            return None
        return ("err", {"kind": "ExecutionError",
                        "message": f"unknown pool message {kind!r}"})

    def _query(self, spec: Mapping[str, object]) -> tuple:
        from repro.backends.base import ExecutionOptions
        from repro.compiler.plan import JoinStrategy
        from repro.resilience.guard import QueryGuard, ResourceBudget

        compiled = self._compile(spec["query"])
        budget = ResourceBudget(max_tuples=spec.get("max_tuples"),
                                max_envs=spec.get("max_envs"),
                                max_width=spec.get("max_width"))
        deadline = spec.get("deadline")
        guard = (QueryGuard(deadline=deadline, budget=budget)
                 if deadline is not None or budget else None)
        options = ExecutionOptions(strategy=JoinStrategy(spec["strategy"]),
                                   guard=guard)
        backend = self._scopes["shard" if spec.get("scatter") else "full"]
        return ("ok", backend.execute(compiled, options))

    def _compile(self, query: str):
        compiled = self._compiled.get(query)
        if compiled is None:
            from repro.api import compile_xquery

            compiled = compile_xquery(query)
            self._compiled[query] = compiled
        return compiled

    def close(self) -> None:
        for backend in self._scopes.values():
            try:
                backend.close()
            except Exception:  # pragma: no cover - exit path
                pass
        for attachment in self._attached.values():
            if attachment is not None:
                attachment.detach()
        self._attached.clear()


def _describe_error(error: BaseException) -> dict[str, object]:
    """A picklable, reconstructable description of a worker-side failure."""
    data: dict[str, object] = {"kind": type(error).__name__,
                               "message": str(error)}
    for attr in ("deadline", "elapsed", "backend", "resource", "limit",
                 "used", "reason"):
        value = getattr(error, attr, None)
        if value is not None:
            data[attr] = value
    if not isinstance(error, ReproError):
        data["message"] = f"{data['message']}\n{traceback.format_exc()}"
    return data


def _rebuild_error(data: Mapping[str, object]) -> ExecutionError:
    """The parent-side typed exception for a worker error description."""
    kind = data.get("kind")
    message = str(data.get("message", ""))
    if kind == "QueryTimeoutError" and "deadline" in data:
        return QueryTimeoutError(float(data["deadline"]),  # type: ignore[arg-type]
                                 float(data.get("elapsed", 0.0)),  # type: ignore[arg-type]
                                 backend=str(data.get("backend") or "procpool"))
    if kind == "ResourceBudgetError" and "resource" in data:
        return ResourceBudgetError(str(data["resource"]),
                                   int(data["limit"]),  # type: ignore[arg-type]
                                   int(data["used"]))  # type: ignore[arg-type]
    if kind == "QueryCancelledError":
        return QueryCancelledError(str(data.get("reason") or "cancelled"))
    if kind == "ExecutionError":
        return ExecutionError(message)
    return ExecutionError(f"{kind}: {message}")


# -- parent side ---------------------------------------------------------------

class _Worker:
    """One live worker process and its request pipe (slot held by caller)."""

    def __init__(self, context, index: int,
                 documents: "Mapping[tuple[str, str], tuple]"):
        self.index = index
        self.name = f"procpool-{index}"
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child_conn, dict(documents)),
            name=f"repro-{self.name}", daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.alive = True

    def send(self, message: tuple) -> None:
        if not self.alive:
            raise WorkerDiedError(self.name, "worker is not running")
        try:
            self.conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            self.mark_dead()
            raise WorkerDiedError(
                self.name, f"worker pipe failed on send: {error}") from error

    def wait(self, token: "CancellationToken | None" = None,
             deadline_at: float | None = None,
             deadline: float | None = None) -> tuple:
        """Block for the next reply, honoring cancellation and the grace cap.

        ``conn.poll`` releases the GIL, so any number of session threads
        can wait on their workers concurrently — that is where the
        process tier's parallelism comes from.
        """
        started = time.monotonic()
        try:
            while True:
                if self.conn.poll(POLL_SECONDS):
                    return self.conn.recv()
                if token is not None and token.cancelled:
                    reason = token.reason or "cancelled"
                    self.kill()
                    raise QueryCancelledError(reason)
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    # The worker should have timed itself out; it did not
                    # answer within the grace window, so treat it as hung.
                    self.kill()
                    raise QueryTimeoutError(deadline or 0.0,
                                            now - started,
                                            backend="procpool")
                if not self.process.is_alive() and not self.conn.poll(0):
                    self.mark_dead()
                    raise WorkerDiedError(
                        self.name,
                        f"worker exited with code {self.process.exitcode} "
                        f"mid-request")
        except (EOFError, BrokenPipeError, ConnectionResetError) as error:
            self.mark_dead()
            raise WorkerDiedError(
                self.name, f"worker pipe failed: {error!r}") from error

    def request(self, message: tuple, **wait_kwargs) -> tuple:
        self.send(message)
        return self.wait(**wait_kwargs)

    def mark_dead(self) -> None:
        self.alive = False

    def kill(self) -> None:
        """Hard-stop a worker whose in-flight request is being abandoned."""
        self.mark_dead()
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop(self, timeout: float = 1.0) -> None:
        """Graceful stop, escalating terminate → kill."""
        if self.alive:
            try:
                self.conn.send(("stop",))
                self.conn.poll(timeout)
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass
        self.mark_dead()
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck in C code
                self.process.kill()
                self.process.join()
        else:
            self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class ProcessQueryPool:
    """A persistent pool of engine workers over shared-memory documents.

    Workers are spawned eagerly (warm pool) and live until :meth:`close`.
    Each worker serves one request at a time; callers take a worker slot,
    exchange exactly one message pair, and release it — the slot
    discipline is what lets document broadcasts and crash respawns
    interleave safely with query traffic.
    """

    def __init__(self, workers: int | None = None,
                 start_method: str | None = None,
                 grace_seconds: float = DEFAULT_GRACE_SECONDS):
        if workers is not None and workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers!r}")
        self.size = workers if workers is not None \
            else max(1, os.cpu_count() or 1)
        self.start_method = start_method or default_start_method()
        self.grace_seconds = grace_seconds
        self._context = multiprocessing.get_context(self.start_method)
        # Start the shared-memory resource tracker *before* the workers
        # exist.  Children inherit the running tracker (fork: by fd,
        # spawn: via the preparation data), so their attach-time
        # registrations land in the same tracker set as the parent's
        # create-time one and the parent's unlink clears all of them.
        # Forking first would leave each worker to lazily start its own
        # tracker, which then warns about "leaked" segments it never saw
        # unlinked.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._cv = threading.Condition()
        self._free = [False] * self.size
        self._workers: "list[_Worker | None]" = [None] * self.size
        self._rotation = 0
        self._closed = False
        #: var → replicated payload / parent-side value / per-worker shards.
        self._documents: dict[str, tuple] = {}
        self._values: dict[str, tuple] = {}
        self._shards: dict[str, list[tuple]] = {}
        #: var → parent-side shard columns (splice source for deltas).
        self._shard_values: dict[str, list[IntervalColumns]] = {}
        #: Live segments, full scope and shard scope kept apart so a
        #: delta can replace exactly the touched one.
        self._full_segments: "dict[str, SharedMemory | None]" = {}
        self._shard_segments: "dict[str, list[SharedMemory | None]]" = {}
        try:
            for index in range(self.size):
                self._spawn(index)
                self._free[index] = True
        except BaseException:
            self.close()
            raise

    # -- documents ------------------------------------------------------------

    def register_document(self, var: str, value: tuple) -> None:
        """Register (or replace) a replicated document on every worker.

        ``value`` is the engine encoding ``(relation, width)``.  Array-
        backed relations go through shared memory; bignum relations are
        pickled to each worker.  Replacing a document drops its shards
        (they are re-exported lazily) and unlinks the old segments once
        every worker has adopted the new payload.
        """
        columns, width = value
        columns = as_columns(columns)
        self._check_open()
        payload, segment = self._export(columns, width)
        old_full = self._full_segments.get(var)
        old_shards = self._shard_segments.pop(var, [])
        self._documents[var] = payload
        self._values[var] = (columns, width)
        self._shards.pop(var, None)
        self._shard_values.pop(var, None)
        self._full_segments[var] = segment
        for index in range(self.size):
            self._request_worker(index, ("doc", var, "full", payload))
        if old_full is not None:
            self._unlink(old_full)
        for shm in old_shards:
            if shm is not None:
                self._unlink(shm)

    def apply_delta(self, var: str, delta) -> bool:
        """Splice an incremental ``UpdateDelta`` into a registered document.

        The parent-side columns are patched copy-on-write
        (:func:`~repro.engine.columns.splice_columns`) and the replicated
        scope gets one fresh segment (a single C-level export of the
        spliced columns).  When the document is sharded, only the shard
        whose contiguous root-tree run contains the affected interval
        range is re-exported — the other workers' shard segments are
        untouched (they merely re-attach).  A delta that is not
        localizable to one shard (a top-level insert between shard
        boundaries) drops the shards for lazy re-export.  Returns
        ``False`` when the delta cannot be spliced (unknown variable,
        pickled fallback payload, width mismatch) — callers then
        re-register wholesale.
        """
        self._check_open()
        if var not in self._values or not delta.incremental:
            return False
        columns, width = self._values[var]
        if delta.old_width != width or not isinstance(columns,
                                                      IntervalColumns):
            return False
        new_columns = splice_columns(columns, delta)
        payload, segment = self._export(new_columns, width)
        old_full = self._full_segments.get(var)
        self._documents[var] = payload
        self._values[var] = (new_columns, width)
        self._full_segments[var] = segment

        old_piece_segment: "SharedMemory | None" = None
        shard_payloads = self._shards.get(var)
        if shard_payloads is not None:
            touched = self._touched_shard(var, delta)
            if touched is None:
                self._drop_shards(var)
                shard_payloads = None
            else:
                pieces = self._shard_values[var]
                new_piece = splice_columns(pieces[touched], delta)
                piece_payload, piece_segment = self._export(new_piece, width)
                pieces[touched] = new_piece
                shard_payloads[touched] = piece_payload
                segments = self._shard_segments[var]
                old_piece_segment = segments[touched]
                segments[touched] = piece_segment
        for index in range(self.size):
            self._request_worker(index, ("doc", var, "full", payload))
            if shard_payloads is not None:
                # Adopting a full replacement drops the worker's shard
                # scope; restore it — untouched workers re-attach their
                # existing segment, the touched one adopts the new piece.
                self._request_worker(index, ("doc", var, "shard",
                                             shard_payloads[index]))
        if old_full is not None:
            self._unlink(old_full)
        if old_piece_segment is not None:
            self._unlink(old_piece_segment)
        return True

    def _touched_shard(self, var: str, delta) -> int | None:
        """Index of the single shard containing the delta's affected range.

        ``None`` when the range spans shard boundaries or falls between
        shards (top-level inserts into the gap separating two pieces).
        """
        spans: list[tuple[int, int]] = list(delta.deleted_ranges)
        if delta.inserted:
            spans.append((delta.inserted[0][1],
                          max(row[2] for row in delta.inserted)))
        if not spans:
            return None
        low = min(span[0] for span in spans)
        high = max(span[1] for span in spans)
        touched = None
        for index, piece in enumerate(self._shard_values[var]):
            if not len(piece):
                continue
            if piece.l[0] <= low and high <= piece.max_right():
                if touched is not None:  # pragma: no cover - defensive
                    return None
                touched = index
            elif low <= piece.max_right() and piece.l[0] <= high:
                return None  # overlaps but is not contained: spans pieces
        return touched

    def _drop_shards(self, var: str) -> None:
        self._shards.pop(var, None)
        self._shard_values.pop(var, None)
        for shm in self._shard_segments.pop(var, []):
            if shm is not None:
                self._unlink(shm)

    def ensure_sharded(self, var: str) -> None:
        """Export per-worker shards of ``var`` (idempotent until replaced)."""
        self._check_open()
        if var in self._shards:
            return
        try:
            columns, width = self._values[var]
        except KeyError:
            raise ExecutionError(
                f"document variable {var!r} is not registered on the "
                f"process pool") from None
        pieces = columns.shard(self.size)
        while len(pieces) < self.size:  # fewer roots than workers
            pieces.append(IntervalColumns.empty())
        payloads: list[tuple] = []
        segments: "list[SharedMemory | None]" = []
        for piece in pieces:
            payload, segment = self._export(piece, width)
            payloads.append(payload)
            segments.append(segment)
        self._shards[var] = payloads
        self._shard_values[var] = pieces
        self._shard_segments[var] = segments
        for index in range(self.size):
            self._request_worker(index, ("doc", var, "shard",
                                         payloads[index]))

    def unregister_document(self, var: str) -> None:
        """Drop a document everywhere and unlink its segments."""
        self._documents.pop(var, None)
        self._values.pop(var, None)
        self._shards.pop(var, None)
        self._shard_values.pop(var, None)
        full = self._full_segments.pop(var, None)
        shard_segments = self._shard_segments.pop(var, [])
        if not self._closed:
            for index in range(self.size):
                self._request_worker(index, ("drop", var))
        if full is not None:
            self._unlink(full)
        for shm in shard_segments:
            if shm is not None:
                self._unlink(shm)

    @property
    def documents(self) -> tuple[str, ...]:
        return tuple(sorted(self._documents))

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every live segment (the shm-leak check reads this)."""
        names = [shm.name for shm in self._full_segments.values()
                 if shm is not None]
        names.extend(shm.name for segments in self._shard_segments.values()
                     for shm in segments if shm is not None)
        return tuple(sorted(names))

    def warmup(self, queries: "Iterable[str]") -> None:
        """Compile (and cache) query texts on every worker ahead of load."""
        for query in queries:
            for index in range(self.size):
                self._request_worker(index, ("warm", str(query)))

    # -- execution ------------------------------------------------------------

    def execute(self, query: str, *, strategy: "JoinStrategy | str" = "msj",
                guard: "QueryGuard | None" = None) -> "tuple[Forest, str]":
        """Run one query on one worker; returns ``(forest, worker name)``."""
        spec = self._spec(query, strategy, guard, scatter=False)
        token, deadline, deadline_at = self._limits(spec, guard)
        index = self._acquire_any()
        worker: "_Worker | None" = None
        try:
            worker = self._ensure(index)
            try:
                reply = worker.request(("query", spec), token=token,
                                       deadline_at=deadline_at,
                                       deadline=deadline)
            except (WorkerDiedError, QueryCancelledError, QueryTimeoutError):
                # The worker is dead (crash) or was killed (cancel /
                # hung); respawn before surfacing so a retry — or the
                # next caller — lands on a fresh process.
                self._respawn(index)
                raise
        finally:
            self._release(index)
        return self._unwrap(reply), worker.name

    def scatter(self, query: str, *, strategy: "JoinStrategy | str" = "msj",
                guard: "QueryGuard | None" = None
                ) -> "tuple[Forest, tuple[str, ...]]":
        """Run one query against every worker's shard; concat the results.

        Sound for root-distributive plans: each worker holds a contiguous
        run of complete top-level trees in original document order, so
        concatenating the per-shard forests in worker order reproduces
        the whole-document result.  Call :meth:`ensure_sharded` for every
        referenced document first.
        """
        spec = self._spec(query, strategy, guard, scatter=True)
        token, deadline, deadline_at = self._limits(spec, guard)
        indexes = list(range(self.size))
        for index in indexes:
            self._acquire(index)
        in_flight: "list[tuple[int, _Worker]]" = []
        try:
            workers = [self._ensure(index) for index in indexes]
            for index, worker in zip(indexes, workers):
                worker.send(("query", spec))
                in_flight.append((index, worker))
            replies = []
            for index, worker in list(in_flight):
                replies.append(worker.wait(token=token,
                                           deadline_at=deadline_at,
                                           deadline=deadline))
                in_flight.remove((index, worker))
            # Every pipe is clean again; only now surface typed errors.
            parts = [self._unwrap(reply) for reply in replies]
            forest = tuple(node for part in parts for node in part)
            return forest, tuple(worker.name for worker in workers)
        except BaseException:
            # Abandoned in-flight requests would desynchronize their
            # pipes' send/recv pairing — kill and respawn those workers.
            for index, worker in in_flight:
                worker.kill()
                self._respawn(index)
            raise
        finally:
            for index in indexes:
                self._release(index)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain briefly, stop every worker, unlink every segment."""
        with self._cv:
            already = self._closed
            self._closed = True
            if not already and timeout is not None:
                deadline_at = time.monotonic() + timeout
                while (not all(self._free)
                       and time.monotonic() < deadline_at):
                    self._cv.wait(0.1)
            self._cv.notify_all()
        for index, worker in enumerate(self._workers):
            if worker is not None:
                worker.stop()
            self._workers[index] = None
        for shm in self._full_segments.values():
            if shm is not None:
                self._unlink(shm)
        for segments in self._shard_segments.values():
            for shm in segments:
                if shm is not None:
                    self._unlink(shm)
        self._full_segments.clear()
        self._shard_segments.clear()
        self._documents.clear()
        self._values.clear()
        self._shards.clear()
        self._shard_values.clear()

    def __enter__(self) -> "ProcessQueryPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("process pool is closed")

    def _export(self, columns: IntervalColumns, width: int
                ) -> "tuple[tuple, SharedMemory | None]":
        if len(columns) and columns.is_array:
            try:
                descriptor, shm = export_columns(columns)
                return ("shm", descriptor, width), shm
            except ValueError:
                pass  # NUL label etc. — fall through to pickling
        return ("pickle", columns, width), None

    @staticmethod
    def _unlink(shm: "SharedMemory") -> None:
        try:
            shm.close()
        except OSError:  # pragma: no cover
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _spec(self, query: str, strategy: "JoinStrategy | str",
              guard: "QueryGuard | None", scatter: bool) -> dict[str, object]:
        spec: dict[str, object] = {
            "query": str(query),
            "strategy": getattr(strategy, "value", str(strategy)),
            "scatter": scatter,
        }
        if guard is not None:
            remaining = guard.remaining
            if remaining is not None:
                spec["deadline"] = max(remaining, 1e-3)
            budget = guard.budget
            if budget:
                spec["max_tuples"] = budget.max_tuples
                spec["max_envs"] = budget.max_envs
                spec["max_width"] = budget.max_width
        return spec

    def _limits(self, spec: Mapping[str, object],
                guard: "QueryGuard | None"):
        token = guard.token if guard is not None else None
        deadline = spec.get("deadline")
        deadline_at = (time.monotonic() + deadline + self.grace_seconds
                       if deadline is not None else None)
        return token, deadline, deadline_at

    @staticmethod
    def _unwrap(reply: tuple):
        kind, payload = reply
        if kind == "ok":
            return payload
        raise _rebuild_error(payload)

    def _spawn(self, index: int) -> "_Worker":
        documents: dict[tuple[str, str], tuple] = {}
        for var, payload in self._documents.items():
            documents[(var, "full")] = payload
        for var, payloads in self._shards.items():
            documents[(var, "shard")] = payloads[index]
        worker = _Worker(self._context, index, documents)
        self._workers[index] = worker
        return worker

    def _ensure(self, index: int) -> "_Worker":
        worker = self._workers[index]
        if worker is None or not worker.alive:
            worker = self._spawn(index)
        return worker

    def _respawn(self, index: int) -> None:
        worker = self._workers[index]
        self._workers[index] = None
        if worker is not None:
            try:
                worker.stop(timeout=0.0)
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            self._spawn(index)
        except Exception:  # pragma: no cover - respawned lazily by _ensure
            logger.exception("failed to respawn pool worker %d", index)

    def _request_worker(self, index: int, message: tuple) -> "tuple | None":
        """One targeted message pair (document broadcasts, warmup).

        A dead worker is respawned instead of failing the broadcast: the
        pool's document maps were updated before the send, so the fresh
        worker adopts the new state at startup.
        """
        self._acquire(index)
        try:
            worker = self._ensure(index)
            try:
                return worker.request(message)
            except WorkerDiedError:
                self._respawn(index)
                return None
        finally:
            self._release(index)

    def _acquire_any(self) -> int:
        with self._cv:
            while True:
                self._check_open()
                for offset in range(self.size):
                    index = (self._rotation + offset) % self.size
                    if self._free[index]:
                        self._free[index] = False
                        self._rotation = (index + 1) % self.size
                        return index
                self._cv.wait(0.1)

    def _acquire(self, index: int) -> None:
        with self._cv:
            while not self._free[index]:
                self._check_open()
                self._cv.wait(0.1)
            self._free[index] = False

    def _release(self, index: int) -> None:
        with self._cv:
            self._free[index] = True
            self._cv.notify_all()
