"""The systems under test, as named benchmark cells.

Mapping to the paper's Section 6 rows:

================  ==============================================================
``naive``         the competitor class (Galax / Kweelt / IPSI-XQ / QuiP /
                  X-Hive behaviour): tree-walking nested-loop interpreter
``di-nlj``        the DI prototype with nested-loop iteration plans
``di-msj``        the DI prototype with structural merge-sort-join plans
``sqlite``        the generated single SQL statement on stock SQLite — the
                  "generic relational engine" whose interval-predicate cost
                  motivates Section 5's special operators
================  ==============================================================

Each system is declarative data — a backend-registry name plus
construction/execution options — and cells run through the uniform
:class:`~repro.backends.base.Backend` lifecycle: document loading and
query compilation happen in the untimed :meth:`prepare` /
:meth:`runner` phase, only the returned runner is measured (matching the
paper's methodology: document load time excluded, CPU seconds reported),
and the backend is always closed, connections included.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api import compile_xquery
from repro.backends.base import ExecutionOptions
from repro.backends.registry import create_backend
from repro.compiler.plan import JoinStrategy
from repro.engine.stats import EngineStats
from repro.obs.trace import Tracer
from repro.xmark.generator import cached_document
from repro.xmark.queries import QUERIES
from repro.xquery.lowering import document_forest


@dataclass(frozen=True)
class SystemSpec:
    """One benchmark row: a registered backend plus fixed options."""

    backend: str
    strategy: JoinStrategy | None = None
    #: Extra keyword arguments for the backend factory.
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    #: Whether the backend fills ``ExecutionOptions.stats`` (DI engine).
    collects_stats: bool = False
    #: Whether the factory takes the harness ``memory_budget`` (the
    #: simulated "IM" limit only applies to the naive competitor).
    accepts_memory_budget: bool = False


#: Section 6 system rows → backend registry configurations.
SYSTEM_SPECS: dict[str, SystemSpec] = {
    "naive": SystemSpec("naive", accepts_memory_budget=True),
    "di-nlj": SystemSpec("engine", strategy=JoinStrategy.NLJ,
                         collects_stats=True),
    "di-msj": SystemSpec("engine", strategy=JoinStrategy.MSJ,
                         collects_stats=True),
    "sqlite": SystemSpec("sqlite"),
}

SYSTEMS = tuple(SYSTEM_SPECS)


def execute_cell(system: str, query_name: str, scale: float,
                 seed: int = 42, memory_budget: int | None = None,
                 collect_breakdown: bool = False) -> dict[str, Any]:
    """Run one (system, query, scale) cell and return measurements.

    Returns a dict with ``seconds`` (CPU), ``wall_seconds``,
    ``prepare_seconds`` (untimed-phase cost: document loading on the
    backend plus runner construction, i.e. planning / SQL translation),
    ``phases`` (compile / prepare / execute wall seconds, derived from the
    cell's span tree), ``result_size`` (trees in the result), and — for
    engine systems with ``collect_breakdown`` — a ``breakdown`` dict of
    per-category fractions.  Resource-limit failures propagate as
    exceptions for the harness to classify.
    """
    if query_name not in QUERIES:
        raise ValueError(f"unknown query {query_name!r}; "
                         f"choose from {sorted(QUERIES)}")
    try:
        spec = SYSTEM_SPECS[system]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; "
                         f"choose from {SYSTEMS}") from None

    tracer = Tracer()
    cell_span = tracer.span("cell", system=system, query=query_name,
                            scale=scale)
    with cell_span:
        document = cached_document(scale, seed=seed)
        with tracer.span("compile"):
            compiled = compile_xquery(QUERIES[query_name])
        bindings = {
            var: document_forest(document)
            for _uri, var in compiled.documents.items()
        }

        backend_options = dict(spec.backend_options)
        if spec.accepts_memory_budget and memory_budget is not None:
            backend_options["memory_budget"] = memory_budget
        stats = EngineStats() if (collect_breakdown and spec.collects_stats) else None
        options = ExecutionOptions(stats=stats)
        if spec.strategy is not None:
            options.strategy = spec.strategy

        with create_backend(spec.backend, **backend_options) as backend:
            # The paper's methodology excludes setup from the reported
            # seconds; measure it separately so trajectories can report
            # prepare (load + plan/translate) vs execute per cell.
            with tracer.span("prepare") as prepare_span:
                backend.prepare(bindings)
                runner = backend.runner(compiled, options)

            # Benchmark hygiene: when the harness forks a cell out of a large
            # parent process, the child's first GC pass faults in the whole
            # inherited heap copy-on-write.  Pay that cost before the clock
            # starts, and keep collector pauses out of the measured region.
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                with tracer.span("execute"):
                    cpu_start = time.process_time()
                    wall_start = time.perf_counter()
                    result = runner()
                    cpu_seconds = time.process_time() - cpu_start
                    wall_seconds = time.perf_counter() - wall_start
            finally:
                if gc_was_enabled:
                    gc.enable()
            measurements: dict[str, Any] = {
                "seconds": cpu_seconds,
                "wall_seconds": wall_seconds,
                "prepare_seconds": prepare_span.seconds,
                "result_size": len(result),
                "scale": scale,
                "document_nodes": document.size,
            }
    measurements["phases"] = {
        child.name: child.seconds for child in cell_span.children
    }
    if stats is not None:
        measurements["breakdown"] = stats.fractions()
    return measurements
