"""Benchmark harness reproducing the Section 6 experiments.

* :mod:`repro.bench.systems` — the competing evaluators as named cells;
* :mod:`repro.bench.harness` — per-cell subprocess execution with
  timeout ("DNF") and memory-budget ("IM") outcomes;
* :mod:`repro.bench.reporting` — paper-style tables (Figures 8–11).
"""

from repro.bench.harness import (
    CONCURRENCY_QUERIES,
    CellResult,
    ThroughputResult,
    measure_concurrent_throughput,
    run_cell,
    sweep,
)
from repro.bench.reporting import format_breakdown_table, format_timing_table
from repro.bench.systems import SYSTEMS, execute_cell

__all__ = [
    "CONCURRENCY_QUERIES",
    "CellResult",
    "SYSTEMS",
    "ThroughputResult",
    "execute_cell",
    "format_breakdown_table",
    "format_timing_table",
    "measure_concurrent_throughput",
    "run_cell",
    "sweep",
]
