"""Backend adapter for the DI prototype engine (Section 5)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.backends.base import Backend, BackendCapabilities, ExecutionOptions
from repro.backends.registry import register_backend
from repro.compiler.pipeline import plan_stage
from repro.compiler.plan import JoinStrategy, PlanNode
from repro.engine.evaluator import DIEngine, Value
from repro.xml.forest import Forest

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import CompiledQuery


@register_backend
class EngineBackend(Backend):
    """Execute plans on :class:`~repro.engine.evaluator.DIEngine`.

    Documents are interval-encoded once at :meth:`prepare` time and the
    encodings are reused across queries; physical plans are cached per
    ``(query source, strategy, decorrelate)``.
    """

    name = "engine"
    capabilities = BackendCapabilities(
        prepared_documents=True,
        updates=True,
        max_width=None,  # Python bignums: width growth is unbounded
        strategies=(JoinStrategy.MSJ, JoinStrategy.NLJ),
        description="DI prototype with merge-sort / nested-loop joins",
    )

    def __init__(self) -> None:
        super().__init__()
        self._encoded: dict[str, Value] = {}
        self._plans: dict[tuple[str, JoinStrategy, bool], PlanNode] = {}

    def _load(self, name: str, forest: Forest) -> None:
        self._encoded[name] = DIEngine.prepare_document(forest)

    def _unload(self, name: str) -> None:
        self._encoded.pop(name, None)
        # Plans do not depend on document *contents*, only on the query,
        # so the plan cache survives document updates.

    def _close(self) -> None:
        self._encoded.clear()
        self._plans.clear()

    def plan_for(self, compiled: "CompiledQuery",
                 options: ExecutionOptions) -> PlanNode:
        """The (cached) physical plan for a compiled query.

        Planning happens under the backend lock so concurrent workers
        asking for the same key share one plan instead of racing to
        build duplicates (plans are immutable once built, so sharing
        the cached instance across threads is safe).
        """
        key = (compiled.source, options.strategy, options.decorrelate)
        plan = self._plans.get(key)
        if plan is None:
            with self._lock:
                plan = self._plans.get(key)
                if plan is None:
                    plan = plan_stage(
                        compiled.core, options.strategy,
                        base_vars=compiled.documents.values(),
                        decorrelate=options.decorrelate,
                        trace=compiled.trace,
                    )
                    self._plans[key] = plan
        return plan

    def _runner(self, compiled: "CompiledQuery",
                options: ExecutionOptions) -> Callable[[], Forest]:
        plan = self.plan_for(compiled, options)
        values = self._values(compiled)
        engine = DIEngine(stats=options.stats, tracer=self._tracer,
                          metrics=options.metrics, guard=options.guard)

        def run() -> Forest:
            # Cached encodings are immutable IntervalColumns: every kernel
            # returns fresh columns, so runs (and threads) share the cached
            # document directly — no per-run re-copy.
            from repro.encoding.interval import decode

            rel, _width = engine.run_plan_values(plan, dict(values))
            return decode(rel)

        return run

    def _values(self, compiled: "CompiledQuery") -> Mapping[str, Value]:
        with self._lock:
            self._bindings(compiled)  # uniform missing-document error
            return {var: self._encoded[var]
                    for var in compiled.documents.values()}
