"""Figure 9 — XMark Q8 timings (single join + group, Section 6.2).

The headline experiment: nested-loop evaluation of the inner FLWR loop is
quadratic (naive interpreter, DI-NLJ), while the structural merge join of
Section 5 (DI-MSJ) is near-linear.  Even at this micro-benchmark's small
fixed scale the ordering DI-MSJ < naive < DI-NLJ is already visible; the
crossover/scale table is in EXPERIMENTS.md
(``python -m repro.bench.run_experiments --figure fig9``).
"""


def test_q8_naive(benchmark, q8_runners):
    result = benchmark(q8_runners.naive)
    assert result


def test_q8_di_nlj(benchmark, q8_runners):
    result = benchmark(q8_runners.di_nlj)
    assert result


def test_q8_di_msj(benchmark, q8_runners):
    result = benchmark(q8_runners.di_msj)
    assert result


def test_q8_results_agree(q8_runners):
    assert (q8_runners.naive() == q8_runners.di_nlj()
            == q8_runners.di_msj())


def test_q8_msj_beats_nlj(q8_runners):
    """The asymptotic claim, stated as work: the MSJ plan touches far
    fewer tuples than the NLJ plan's quadratic expansion."""
    import time

    start = time.perf_counter()
    q8_runners.di_nlj()
    nlj_seconds = time.perf_counter() - start

    start = time.perf_counter()
    q8_runners.di_msj()
    msj_seconds = time.perf_counter() - start
    assert msj_seconds < nlj_seconds
