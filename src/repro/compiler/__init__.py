"""Physical plan compilation for the DI engine (Section 5).

* :mod:`repro.compiler.plan` — physical plan node types;
* :mod:`repro.compiler.decorrelate` — the Section 5 rewrite recognizing
  nested ``for`` loops whose inner source is independent of the outer
  iteration variable, turning them into structural merge joins;
* :mod:`repro.compiler.planner` — core AST → plan, per join strategy.
"""

from repro.compiler.plan import JoinStrategy, PlanNode
from repro.compiler.planner import compile_plan, explain_plan

__all__ = ["JoinStrategy", "PlanNode", "compile_plan", "explain_plan"]
