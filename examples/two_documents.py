"""Joining across two separate documents.

``document()`` may be called with any number of URIs; every document
becomes a base-environment variable, so the Section 5 decorrelation
applies to cross-document joins exactly as to self-joins.  This example
keeps people and auctions in separate files and joins them with the
merge-join plan.

Run with:  python examples/two_documents.py
"""

from repro import compile_xquery, run_xquery

PEOPLE = """
<people>
  <person id="p0"><name>Ada Lovelace</name><city>London</city></person>
  <person id="p1"><name>Grace Hopper</name><city>New York</city></person>
  <person id="p2"><name>Edsger Dijkstra</name><city>Nuenen</city></person>
</people>
"""

SALES = """
<sales>
  <sale buyer="p1"><item>compiler</item><price>120</price></sale>
  <sale buyer="p0"><item>engine</item><price>800</price></sale>
  <sale buyer="p1"><item>manual</item><price>15</price></sale>
</sales>
"""

QUERY = """
for $p in document("people.xml")/people/person
let $bought := for $s in document("sales.xml")/sales/sale
               where $s/@buyer = $p/@id
               return $s/item/text()
where not(empty($bought))
return <customer name="{$p/name/text()}" purchases="{count($bought)}">
         {$bought}
       </customer>
"""
# (An `order by $p/name/text()` clause also works on the engine and
# interpreter backends; on SQLite the structural sort's squared width
# bound overflows 64-bit integers even for small documents — the
# Section 4.3 fixed-width trade-off. See EXPERIMENTS.md, "OV".)


def main() -> None:
    documents = {"people.xml": PEOPLE, "sales.xml": SALES}
    compiled = compile_xquery(QUERY)

    print("Documents referenced:", ", ".join(compiled.documents))
    print("\nPhysical plan (note the cross-document merge join):\n")
    print(compiled.explain("msj"))

    print("\nResults (all backends agree):")
    for backend in ("engine", "interpreter", "sqlite"):
        result = run_xquery(compiled, documents, backend=backend)
        print(f"  {backend:>11}: {result.to_xml()}")


if __name__ == "__main__":
    main()
