"""Exception hierarchy for the dynamic-interval XQuery reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class XMLParseError(ReproError):
    """Raised when XML text cannot be parsed into a forest."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an interval encoding is malformed or inconsistent."""


class WidthOverflowError(EncodingError):
    """Raised when inferred interval widths exceed the backend's integer range.

    Section 4.3 of the paper notes that interval endpoints are bounded by a
    polynomial whose degree equals the nesting depth of the query; a backend
    with fixed-width integers (e.g. SQLite's 64-bit ints) may overflow for
    deeply nested queries over large documents.
    """


class XQuerySyntaxError(ReproError):
    """Raised when XQuery surface text cannot be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LoweringError(ReproError):
    """Raised when a surface AST cannot be lowered to the core language."""


class UnknownFunctionError(ReproError):
    """Raised when a core expression references an unregistered XFn."""


class UnboundVariableError(ReproError):
    """Raised when evaluation encounters a variable absent from the environment."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unbound variable: ${name}")


class TranslationError(ReproError):
    """Raised when a core expression cannot be translated to SQL."""


class DocumentNotFoundError(ReproError):
    """Raised when a session query references an unregistered document URI.

    The message always lists the URIs that *are* registered (mirroring
    :class:`UnknownBackendError`), so a typo'd ``document(...)`` call is
    diagnosable from the error text alone.
    """

    def __init__(self, uri: str, registered: "tuple[str, ...] | list[str]" = ()):
        self.uri = uri
        self.registered = tuple(registered)
        known = ", ".join(repr(u) for u in self.registered) or "<none>"
        super().__init__(
            f"no document registered for {uri!r}; registered documents: {known}")


class UnknownBackendError(ReproError):
    """Raised when a backend name is not present in the backend registry.

    The message always lists the names that *are* registered, sourced from
    the registry at raise time, so the same error text is produced whether
    the lookup came from :func:`repro.run_xquery`, an
    :class:`~repro.session.XQuerySession`, or the CLI.
    """

    def __init__(self, name: str, registered: "tuple[str, ...] | list[str]" = ()):
        self.name = name
        self.registered = tuple(registered)
        known = ", ".join(repr(n) for n in self.registered) or "<none>"
        super().__init__(f"unknown backend {name!r}; registered backends: {known}")


class PlanError(ReproError):
    """Raised when a core expression cannot be compiled to a physical plan."""


def _truncate_statement(statement: str, limit: int = 200) -> str:
    flattened = " ".join(statement.split())
    if len(flattened) <= limit:
        return flattened
    return flattened[: limit - 1] + "…"


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution.

    ``statement`` optionally attaches the offending SQL text (truncated in
    the message) so driver failures surfacing through the public API carry
    enough context to reproduce without leaking driver exception types.
    """

    def __init__(self, message: str, *, statement: str | None = None):
        self.statement = statement
        if statement is not None:
            message = f"{message} [statement: {_truncate_statement(statement)}]"
        super().__init__(message)


class TransientBackendError(ExecutionError):
    """A backend failure that is expected to succeed on retry.

    Raised for driver-level conditions such as a locked/busy database or
    an injected transport fault; :class:`repro.resilience.RetryPolicy`
    retries these by default, and repeated occurrences trip the
    per-backend circuit breaker.
    """


class WorkerDiedError(TransientBackendError):
    """Raised when a process-pool worker died while serving a request.

    The pool respawns the worker immediately, so the failure is transient
    by construction: :class:`repro.resilience.RetryPolicy` retries it by
    default and repeated deaths trip the per-backend circuit breaker,
    exactly like any other transient backend fault (see
    :mod:`repro.concurrency.procpool`).
    """

    def __init__(self, worker: str, message: str = "worker process died"):
        self.worker = worker
        super().__init__(f"{message} [{worker}]")


class QueryTimeoutError(ExecutionError):
    """Raised when a query runs past its configured deadline.

    Enforced cooperatively: the DI engine checks the deadline in its
    operator loop, SQL backends via the connection's progress handler, and
    the interpreter/naive evaluators via their step callbacks — the
    in-process analogue of the paper's two-hour benchmark cutoff.
    """

    def __init__(self, deadline: float, elapsed: float, *,
                 backend: str | None = None):
        self.deadline = deadline
        self.elapsed = elapsed
        self.backend = backend
        where = f" on backend {backend!r}" if backend else ""
        super().__init__(
            f"query exceeded its {deadline:.3f}s deadline{where} "
            f"(elapsed {elapsed:.3f}s)")


class ResourceBudgetError(ExecutionError):
    """Raised when a query exhausts a configured resource budget.

    ``resource`` names the budget dimension (``tuples``, ``envs``,
    ``width``), mirroring the Koch-style polynomial blow-up the guard is
    designed to cap (see PAPERS.md).
    """

    def __init__(self, resource: str, limit: int, used: int):
        self.resource = resource
        self.limit = limit
        self.used = used
        super().__init__(
            f"query exceeded its {resource} budget: used {used}, limit {limit}")


class QueryCancelledError(ExecutionError):
    """Raised when a query's cancellation token was triggered.

    Cancellation is cooperative: the token is observed at the same cheap
    checkpoints as deadlines (engine tick strides, SQL progress
    handlers, statement boundaries), so queued *and* running work stops
    promptly without threads or signals.  Cancellation is caller- or
    operator-initiated, so it never retries, never falls back, never
    trips a circuit breaker, and never burns SLO error budget.
    """

    def __init__(self, reason: str = "cancelled"):
        self.reason = reason
        super().__init__(f"query cancelled: {reason}")


class OverloadError(ExecutionError):
    """Raised when admission control refuses a query instead of queueing it.

    The session is protecting itself: the admission queue is at its
    bound, the estimated queue wait would already blow the request's
    deadline, the brownout controller is shedding this priority class,
    or the session is draining for shutdown.  ``retry_after`` is the
    load shedder's hint (seconds) for when capacity is expected back —
    clients and load balancers should back off at least that long.
    """

    def __init__(self, reason: str, *, retry_after: float | None = None,
                 queue_depth: int | None = None,
                 priority: str | None = None):
        self.reason = reason
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        self.priority = priority
        hint = (f"; retry after {retry_after:.3f}s"
                if retry_after is not None else "")
        super().__init__(f"query shed by admission control: {reason}{hint}")


class CircuitOpenError(ExecutionError):
    """Raised (or recorded as a degradation) when a backend's circuit is open.

    The breaker opened after consecutive failures; ``retry_after`` is the
    time remaining until the breaker half-opens and allows a probe.
    """

    def __init__(self, backend: str, retry_after: float | None = None):
        self.backend = backend
        self.retry_after = retry_after
        hint = (f"; retry in {retry_after:.3f}s"
                if retry_after is not None else "")
        super().__init__(f"circuit breaker for backend {backend!r} is open{hint}")


class BenchmarkTimeout(ReproError):
    """Raised internally by the benchmark harness when a cell exceeds its budget."""
