"""Recursive-descent parser for the XQuery surface subset.

Grammar (simplified)::

    Query      := Expr
    Expr       := FLWR | OrExpr
    FLWR       := (ForClause | LetClause)+ ('where' OrExpr)? 'return' Expr
    ForClause  := 'for' $v 'in' Expr (',' $v 'in' Expr)*
    LetClause  := 'let' $v ':=' Expr (',' $v ':=' Expr)*
    OrExpr     := AndExpr ('or' AndExpr)*
    AndExpr    := CmpExpr ('and' CmpExpr)*
    CmpExpr    := PathExpr (('='|'!='|'<'|'<='|'>'|'>=') PathExpr)?
    PathExpr   := ('/'|'//')? Primary (('/'|'//') Step | '[' Expr ']')*
    Step       := Name | '@' Name | 'text' '(' ')' | '*'
    Primary    := $v | '.' | StringLiteral | NumberLiteral
                | Name '(' Args? ')' | '(' ExprSeq? ')' | Constructor

Direct constructors are parsed in character mode (see
:mod:`repro.xquery.lexer`); ``{expr}`` switches back to expression mode.
The parser produces the surface AST of :mod:`repro.xquery.ast`; lowering to
the core language happens in :mod:`repro.xquery.lowering`.
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xquery.ast import (
    SAttributeConstructor,
    SBooleanOp,
    SComparison,
    SConditional,
    SContextItem,
    SDocument,
    SElementConstructor,
    SFLWR,
    SForClause,
    SFunctionCall,
    SLetClause,
    SOrderBy,
    SPath,
    SPositional,
    SPredicate,
    SQuantified,
    SQuery,
    SSequence,
    SStep,
    SStringLiteral,
    SurfaceExpr,
    SVarRef,
)
from repro.xquery.lexer import Scanner, Token

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_XML_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

#: Built-in functions callable from surface syntax, with their arity.
_BUILTIN_ARITIES = {
    "document": 1,
    "doc": 1,
    "count": 1,
    "empty": 1,
    "not": 1,
    "data": 1,
    "string": 1,
    "distinct": 1,
    "head": 1,
    "tail": 1,
    "reverse": 1,
    "sort": 1,
    "subtrees": 1,
    "deep-equal": 2,
    "deep-less": 2,
}


def parse_xquery(source: str) -> SQuery:
    """Parse XQuery text into a surface :class:`SQuery`.

    Raises :class:`~repro.errors.XQuerySyntaxError` on malformed input.
    """
    parser = _Parser(Scanner(source))
    body = parser.parse_expr()
    trailing = parser.scanner.peek()
    if trailing.type != "EOF":
        raise parser.scanner.error(
            f"unexpected trailing input: {trailing.value!r}"
        )
    documents = tuple(sorted(parser.documents))
    return SQuery(body, documents)


class _Parser:
    def __init__(self, scanner: Scanner):
        self.scanner = scanner
        self.documents: set[str] = set()

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> SurfaceExpr:
        token = self.scanner.peek()
        if token.is_keyword("for", "let"):
            return self.parse_flwr()
        return self.parse_or_expr()

    def parse_flwr(self) -> SFLWR:
        clauses: list[SForClause | SLetClause] = []
        while True:
            token = self.scanner.peek()
            if token.is_keyword("for"):
                self.scanner.next()
                clauses.extend(self._parse_for_bindings())
            elif token.is_keyword("let"):
                self.scanner.next()
                clauses.extend(self._parse_let_bindings())
            else:
                break
        if not clauses:
            raise self.scanner.error("FLWR expression requires for/let clauses")
        where = None
        if self.scanner.peek().is_keyword("where"):
            self.scanner.next()
            where = self.parse_or_expr()
        order_by = self._parse_order_by()
        self.scanner.expect_keyword("return")
        returns = self.parse_expr()
        return SFLWR(tuple(clauses), where, returns, order_by)

    def _parse_order_by(self) -> SOrderBy | None:
        # "order" / "by" are soft keywords: they stay valid as path steps
        # and element names elsewhere.
        token = self.scanner.peek()
        if not (token.type == "NAME" and token.value == "order"):
            return None
        self.scanner.next()
        by = self.scanner.next()
        if by.type != "NAME" or by.value != "by":
            raise self.scanner.error(f"expected 'by' after 'order', "
                                     f"found {by.value!r}")
        key = self.parse_path()
        descending = False
        direction = self.scanner.peek()
        if direction.type == "NAME" and direction.value in ("ascending",
                                                            "descending"):
            self.scanner.next()
            descending = direction.value == "descending"
        return SOrderBy(key, descending)

    def _parse_for_bindings(self) -> list[SForClause]:
        bindings = []
        while True:
            var = self._expect_variable()
            self.scanner.expect_keyword("in")
            bindings.append(SForClause(var, self.parse_expr()))
            if self.scanner.peek().is_op(","):
                self.scanner.next()
            else:
                return bindings

    def _parse_let_bindings(self) -> list[SLetClause]:
        bindings = []
        while True:
            var = self._expect_variable()
            self.scanner.expect_op(":=")
            bindings.append(SLetClause(var, self.parse_expr()))
            if self.scanner.peek().is_op(","):
                self.scanner.next()
            else:
                return bindings

    def _expect_variable(self) -> str:
        token = self.scanner.next()
        if token.type != "VARIABLE":
            raise self.scanner.error(f"expected a variable, found {token.value!r}")
        return token.value

    def parse_or_expr(self) -> SurfaceExpr:
        left = self.parse_and_expr()
        while self.scanner.peek().is_keyword("or"):
            self.scanner.next()
            left = SBooleanOp("or", left, self.parse_and_expr())
        return left

    def parse_and_expr(self) -> SurfaceExpr:
        left = self.parse_comparison()
        while self.scanner.peek().is_keyword("and"):
            self.scanner.next()
            left = SBooleanOp("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> SurfaceExpr:
        left = self.parse_path()
        token = self.scanner.peek()
        if token.type == "OP" and token.value in _COMPARISON_OPS:
            # `<` followed directly by a letter means an element constructor,
            # which cannot appear as a comparison operator position anyway —
            # constructors are parsed in parse_primary, so plain `<` here is
            # always the operator.
            self.scanner.next()
            right = self.parse_path()
            return SComparison(token.value, left, right)
        return left

    # -- paths ---------------------------------------------------------------

    def parse_path(self) -> SurfaceExpr:
        expr = self.parse_primary()
        while True:
            token = self.scanner.peek()
            if token.is_op("/"):
                if self._lookahead_is_constructor():
                    break
                self.scanner.next()
                expr = self._append_step(expr, axis="child")
            elif token.is_op("//"):
                self.scanner.next()
                expr = self._append_step(expr, axis="descendant")
            elif token.is_op("["):
                self.scanner.next()
                inner = self.scanner.peek()
                if inner.type == "NUMBER" and "." not in inner.value:
                    self.scanner.next()
                    self.scanner.expect_op("]")
                    position = int(inner.value)
                    if position < 1:
                        raise self.scanner.error(
                            "positional predicates are 1-based")
                    expr = SPositional(expr, position)
                else:
                    condition = self.parse_or_expr()
                    self.scanner.expect_op("]")
                    expr = SPredicate(expr, condition)
            else:
                break
        return expr

    def _lookahead_is_constructor(self) -> bool:
        # Never true for "/" in this grammar; kept for clarity/extension.
        return False

    def _append_step(self, base: SurfaceExpr, axis: str) -> SurfaceExpr:
        step = self._parse_step(axis)
        if isinstance(base, SPath):
            return SPath(base.base, base.steps + (step,))
        return SPath(base, (step,))

    def _parse_step(self, axis: str) -> SStep:
        token = self.scanner.next()
        if token.is_op("@"):
            name = self.scanner.next()
            if name.type != "NAME":
                raise self.scanner.error(
                    f"expected attribute name after '@', found {name.value!r}"
                )
            return SStep("attribute", name.value)
        if token.is_op("*"):
            return SStep(axis, "*")
        if token.type == "NAME":
            if token.value == "text" and self.scanner.peek().is_op("("):
                self.scanner.next()
                self.scanner.expect_op(")")
                return SStep(axis, "text()")
            return SStep(axis, token.value)
        raise self.scanner.error(f"expected a path step, found {token.value!r}")

    # -- primaries ------------------------------------------------------------

    def parse_primary(self) -> SurfaceExpr:
        token = self.scanner.peek()
        if token.type == "VARIABLE":
            self.scanner.next()
            return SVarRef(token.value)
        if token.type == "STRING":
            self.scanner.next()
            return SStringLiteral(token.value)
        if token.type == "NUMBER":
            self.scanner.next()
            return SStringLiteral(token.value)
        if token.is_op("."):
            self.scanner.next()
            return SContextItem()
        if token.is_op("("):
            self.scanner.next()
            return self._parse_parenthesized()
        if token.is_op("<") and self._next_char_starts_name():
            return self.parse_constructor()
        if token.type == "NAME":
            if token.value == "if":
                return self._parse_conditional()
            if token.value in ("some", "every"):
                return self._parse_quantified(token.value)
            return self._parse_function_call()
        raise self.scanner.error(f"unexpected token {token.value!r}")

    def _parse_quantified(self, quantifier: str) -> SQuantified:
        """``some|every $v in expr satisfies cond`` (soft keywords)."""
        self.scanner.next()  # 'some' / 'every'
        var = self._expect_variable()
        self.scanner.expect_keyword("in")
        source = self.parse_path()
        satisfies = self.scanner.next()
        if satisfies.type != "NAME" or satisfies.value != "satisfies":
            raise self.scanner.error(
                f"expected 'satisfies', found {satisfies.value!r}")
        condition = self.parse_or_expr()
        return SQuantified(quantifier, var, source, condition)

    def _parse_conditional(self) -> SConditional:
        """``if (cond) then expr else expr`` — if/then/else are soft
        keywords so they remain usable as element and step names."""
        self.scanner.next()  # 'if'
        self.scanner.expect_op("(")
        condition = self.parse_or_expr()
        self.scanner.expect_op(")")
        then_token = self.scanner.next()
        if then_token.type != "NAME" or then_token.value != "then":
            raise self.scanner.error(
                f"expected 'then', found {then_token.value!r}")
        consequent = self.parse_expr()
        else_token = self.scanner.next()
        if else_token.type != "NAME" or else_token.value != "else":
            raise self.scanner.error(
                f"expected 'else', found {else_token.value!r}")
        alternative = self.parse_expr()
        return SConditional(condition, consequent, alternative)

    def _next_char_starts_name(self) -> bool:
        # When `<` has been peeked, the scanner cursor sits right after it.
        source, pos = self.scanner.source, self.scanner.pos
        return pos < len(source) and (source[pos].isalpha() or source[pos] == "_")

    def _parse_parenthesized(self) -> SurfaceExpr:
        if self.scanner.peek().is_op(")"):
            self.scanner.next()
            return SSequence(())
        items = [self.parse_expr()]
        while self.scanner.peek().is_op(","):
            self.scanner.next()
            items.append(self.parse_expr())
        self.scanner.expect_op(")")
        if len(items) == 1:
            return items[0]
        return SSequence(tuple(items))

    def _parse_function_call(self) -> SurfaceExpr:
        name_token = self.scanner.next()
        name = name_token.value
        if name not in _BUILTIN_ARITIES:
            raise self.scanner.error(f"unknown function {name!r}")
        self.scanner.expect_op("(")
        args: list[SurfaceExpr] = []
        if not self.scanner.peek().is_op(")"):
            args.append(self.parse_expr())
            while self.scanner.peek().is_op(","):
                self.scanner.next()
                args.append(self.parse_expr())
        self.scanner.expect_op(")")
        expected = _BUILTIN_ARITIES[name]
        if len(args) != expected:
            raise self.scanner.error(
                f"function {name}() expects {expected} argument(s), got {len(args)}"
            )
        if name in ("document", "doc"):
            literal = args[0]
            if not isinstance(literal, SStringLiteral):
                raise self.scanner.error("document() requires a string literal")
            self.documents.add(literal.value)
            return SDocument(literal.value)
        return SFunctionCall(name, tuple(args))

    # -- direct constructors ------------------------------------------------------

    def parse_constructor(self) -> SElementConstructor:
        self.scanner.expect_op("<")
        tag_token = self.scanner.next()
        if tag_token.type not in ("NAME", "KEYWORD"):
            raise self.scanner.error(
                f"expected element name, found {tag_token.value!r}"
            )
        tag = tag_token.value
        attributes: list[SAttributeConstructor] = []
        while True:
            token = self.scanner.peek()
            if token.is_op(">"):
                self.scanner.next()
                content = self._parse_constructor_content(tag)
                return SElementConstructor(tag, tuple(attributes), tuple(content))
            if token.is_op("/"):
                self.scanner.next()
                self.scanner.expect_op(">")
                return SElementConstructor(tag, tuple(attributes), ())
            if token.type in ("NAME", "KEYWORD"):
                self.scanner.next()
                attributes.append(self._parse_attribute(token))
            else:
                raise self.scanner.error(
                    f"unexpected token {token.value!r} in element constructor"
                )

    def _parse_attribute(self, name_token: Token) -> SAttributeConstructor:
        self.scanner.expect_op("=")
        self._skip_raw_whitespace()
        quote = self.scanner.peek_char()
        if quote not in ("'", '"'):
            raise self.scanner.error("attribute value must be quoted")
        self.scanner.read_char()
        parts: list[SurfaceExpr] = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                parts.append(SStringLiteral("".join(buffer)))
                buffer.clear()

        while True:
            char = self.scanner.peek_char()
            if not char:
                raise self.scanner.error("unterminated attribute value")
            if char == quote:
                self.scanner.read_char()
                break
            if char == "{":
                if self.scanner.startswith_raw("{{"):
                    self.scanner.skip_raw("{{")
                    buffer.append("{")
                    continue
                self.scanner.read_char()
                flush()
                parts.append(self._parse_enclosed_sequence())
            elif char == "}":
                if self.scanner.startswith_raw("}}"):
                    self.scanner.skip_raw("}}")
                    buffer.append("}")
                    continue
                raise self.scanner.error("unescaped '}' in attribute value")
            elif char == "&":
                buffer.append(self._parse_xml_entity())
            else:
                buffer.append(self.scanner.read_char())
        flush()
        return SAttributeConstructor(name_token.value, tuple(parts))

    def _parse_constructor_content(self, tag: str) -> list[SurfaceExpr]:
        content: list[SurfaceExpr] = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                literal = "".join(buffer)
                buffer.clear()
                # Boundary-whitespace stripping (XQuery default).
                if literal.strip():
                    content.append(SStringLiteral(literal))

        while True:
            char = self.scanner.peek_char()
            if not char:
                raise self.scanner.error(f"unterminated constructor <{tag}>")
            if char == "<":
                if self.scanner.startswith_raw("</"):
                    flush()
                    self.scanner.skip_raw("</")
                    closing = self.scanner.next()
                    if closing.type not in ("NAME", "KEYWORD") or closing.value != tag:
                        raise self.scanner.error(
                            f"mismatched closing tag </{closing.value}>, expected </{tag}>"
                        )
                    self.scanner.expect_op(">")
                    return content
                flush()
                content.append(self.parse_constructor())
            elif char == "{":
                if self.scanner.startswith_raw("{{"):
                    self.scanner.skip_raw("{{")
                    buffer.append("{")
                    continue
                self.scanner.read_char()
                flush()
                content.append(self._parse_enclosed_sequence())
            elif char == "}":
                if self.scanner.startswith_raw("}}"):
                    self.scanner.skip_raw("}}")
                    buffer.append("}")
                    continue
                raise self.scanner.error("unescaped '}' in element content")
            elif char == "&":
                buffer.append(self._parse_xml_entity())
            else:
                buffer.append(self.scanner.read_char())

    def _parse_enclosed_sequence(self) -> SurfaceExpr:
        """Parse ``expr (, expr)*`` after an opening ``{`` up to the ``}``."""
        items = [self.parse_expr()]
        while self.scanner.peek().is_op(","):
            self.scanner.next()
            items.append(self.parse_expr())
        self.scanner.expect_op("}")
        if len(items) == 1:
            return items[0]
        return SSequence(tuple(items))

    def _parse_xml_entity(self) -> str:
        self.scanner.skip_raw("&")
        name_chars: list[str] = []
        while True:
            char = self.scanner.read_char()
            if char == ";":
                break
            if not char or len(name_chars) > 8:
                raise self.scanner.error("unterminated entity reference")
            name_chars.append(char)
        name = "".join(name_chars)
        if name.startswith("#x") or name.startswith("#X"):
            return chr(int(name[2:], 16))
        if name.startswith("#"):
            return chr(int(name[1:]))
        if name in _XML_ENTITIES:
            return _XML_ENTITIES[name]
        raise self.scanner.error(f"unknown entity &{name};")

    def _skip_raw_whitespace(self) -> None:
        while self.scanner.peek_char() in (" ", "\t", "\r", "\n") and self.scanner.peek_char():
            self.scanner.read_char()
