"""Join-graph isolation analysis over compiled physical plans.

Following Grust, Mayr and Rittinger's *XQuery Join Graph Isolation*, a
decorrelated :class:`~repro.compiler.plan.JoinForNode` splits into two
halves: the *join graph* — source, keys, and any residual predicate —
and the surrounding *plan tail* (the loop body).  When the body depends
on nothing but the join variable itself, the tail can be evaluated once
over the inner expansion (one environment per source tree) and the
finished blocks gathered into the matched pairs, instead of re-running
the body per pair.  That keeps every intermediate interval relation in
the *small* inner index space — which is exactly what keeps endpoints
inside int64 kernel range on multi-join queries like XMark Q9.

This module is pure analysis: it decides what *could* be isolated,
which residual conjuncts can sink below the join, and which outer
bindings a join genuinely needs copied.  The cost-based decisions (is
isolation worth it here?) live in :mod:`repro.compiler.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.compiler.planner as planner
from repro.compiler.plan import (
    AndCond,
    CondPlan,
    JoinForNode,
    PlanNode,
    iter_plan,
)


@dataclass(frozen=True)
class JoinAnalysis:
    """One join edge of the plan's join graph.

    ``isolable`` — the loop body reads only the join variable, so it can
    run once on the inner expansion.  ``inner_conjuncts`` — residual
    conjuncts over the join variable alone, safe to apply on the inner
    side *before* pair matching.  ``residual_conjuncts`` — what must stay
    on the pair sequence.  ``required_outer`` — the outer bindings the
    pair sequence actually needs: the body's frees plus the remaining
    residual's frees.  The join keys are *not* in it — ``key_outer`` is
    evaluated on the enclosing sequence before any pair is materialized,
    so its variables never need copying into pair space.
    """

    node: JoinForNode
    isolable: bool
    inner_conjuncts: tuple[CondPlan, ...]
    residual_conjuncts: tuple[CondPlan, ...]
    required_outer: frozenset[str]


def split_conjuncts(condition: CondPlan | None) -> list[CondPlan]:
    """Flatten a conjunction into its conjunct list (empty for ``None``)."""
    if condition is None:
        return []
    if isinstance(condition, AndCond):
        return split_conjuncts(condition.left) + split_conjuncts(condition.right)
    return [condition]


def merge_conjuncts(conjuncts: list[CondPlan]) -> CondPlan | None:
    """Rebuild a left-deep conjunction (``None`` for the empty list)."""
    if not conjuncts:
        return None
    merged = conjuncts[0]
    for conjunct in conjuncts[1:]:
        merged = AndCond(merged, conjunct)
    return merged


def analyze_join(node: JoinForNode) -> JoinAnalysis:
    """Split one join into its graph half and its plan-tail half."""
    var = node.var
    body_free = planner.plan_free(node.body)
    isolable = body_free <= {var}

    inner: list[CondPlan] = []
    residual: list[CondPlan] = []
    for conjunct in split_conjuncts(node.residual):
        if planner.cond_free(conjunct) <= {var}:
            inner.append(conjunct)
        else:
            residual.append(conjunct)

    required = set(body_free)
    for conjunct in residual:
        required |= planner.cond_free(conjunct)
    required.discard(var)

    return JoinAnalysis(
        node=node,
        isolable=isolable,
        inner_conjuncts=tuple(inner),
        residual_conjuncts=tuple(residual),
        required_outer=frozenset(required),
    )


def join_graph(plan: PlanNode) -> tuple[JoinAnalysis, ...]:
    """Every join edge of ``plan``, in pre-order."""
    return tuple(analyze_join(node) for node in iter_plan(plan)
                 if isinstance(node, JoinForNode))
