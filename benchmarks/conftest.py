"""Shared benchmark fixtures.

Each figure's benchmark module measures the competing systems on a small
XMark document (so ``pytest benchmarks/ --benchmark-only`` completes in
minutes); the full paper-scale sweeps — with DNF/IM handling — live in
``python -m repro.bench.run_experiments``, which regenerates the tables in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.api import compile_xquery
from repro.baselines.naive import NaiveEvaluator
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.engine.evaluator import DIEngine
from repro.xmark.generator import generate_document
from repro.xmark.queries import QUERIES
from repro.xquery.interpreter import Interpreter
from repro.xquery.lowering import document_forest

#: Scale used by the pytest-benchmark micro comparisons.
BENCH_SCALE = 0.001


@pytest.fixture(scope="session")
def xmark_bench_doc():
    return generate_document(BENCH_SCALE, seed=42)


class QueryRunners:
    """Pre-compiled runners for one query over one document."""

    def __init__(self, query_name: str, document):
        self.compiled = compile_xquery(QUERIES[query_name])
        self.bindings = {
            var: document_forest((document,))
            for var in self.compiled.documents.values()
        }
        self.nlj_plan = compile_plan(
            self.compiled.core, JoinStrategy.NLJ,
            base_vars=self.compiled.documents.values())
        self.msj_plan = compile_plan(
            self.compiled.core, JoinStrategy.MSJ,
            base_vars=self.compiled.documents.values())

    def naive(self):
        return NaiveEvaluator().evaluate(self.compiled.core, self.bindings)

    def interpreter(self):
        return Interpreter().evaluate(self.compiled.core, self.bindings)

    def di_nlj(self):
        return DIEngine().run_plan(self.nlj_plan, self.bindings)

    def di_msj(self):
        return DIEngine().run_plan(self.msj_plan, self.bindings)


@pytest.fixture(scope="session")
def q8_runners(xmark_bench_doc):
    return QueryRunners("Q8", xmark_bench_doc)


@pytest.fixture(scope="session")
def q9_runners(xmark_bench_doc):
    return QueryRunners("Q9", xmark_bench_doc)


@pytest.fixture(scope="session")
def q13_runners(xmark_bench_doc):
    return QueryRunners("Q13", xmark_bench_doc)
