"""The query language layer.

* :mod:`repro.xquery.ast` — the Minimal XQuery core language (Definition
  2.2) plus the surface (FLWR / XPath / constructor) AST.
* :mod:`repro.xquery.lexer` / :mod:`repro.xquery.parser` — surface syntax.
* :mod:`repro.xquery.lowering` — surface AST → core language.
* :mod:`repro.xquery.functions` — the XFn registry with width functions.
* :mod:`repro.xquery.interpreter` — the Figure 3 denotational semantics,
  used as the reference oracle for the SQL translation and the DI engine.
"""

from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
    core_to_str,
    free_variables,
)
from repro.xquery.functions import FUNCTIONS, FunctionSpec, width_of
from repro.xquery.interpreter import Interpreter, evaluate, evaluate_condition
from repro.xquery.lowering import lower_query
from repro.xquery.parser import parse_xquery

__all__ = [
    "And",
    "Condition",
    "CoreExpr",
    "Empty",
    "Equal",
    "FnApp",
    "For",
    "FUNCTIONS",
    "FunctionSpec",
    "Interpreter",
    "Less",
    "Let",
    "Not",
    "Or",
    "SomeEqual",
    "Var",
    "Where",
    "core_to_str",
    "evaluate",
    "evaluate_condition",
    "free_variables",
    "lower_query",
    "parse_xquery",
    "width_of",
]
