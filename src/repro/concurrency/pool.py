"""Per-thread resource pooling with uniform close-all semantics.

DB-API drivers are, in general, only safe to use from the thread that
opened the connection (stdlib ``sqlite3`` enforces this outright with
``check_same_thread``).  The relational backends therefore keep **one
connection per worker thread**, created lazily the first time that thread
executes, and the owning backend closes *all* of them — from whatever
thread calls :meth:`Backend.close` — in one idempotent sweep.

:class:`ThreadLocalPool` packages that pattern: ``get()`` returns the
calling thread's resource (creating and registering it on first use),
``close_all()`` closes every resource ever created.  Resources opened for
worker threads that have since exited are still tracked and closed.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class ThreadLocalPool(Generic[T]):
    """Lazily creates one resource per thread; closes them all at once.

    ``factory`` builds a fresh resource; ``close`` releases one (defaults
    to calling the resource's own ``close()``).  After :meth:`close_all`,
    ``get()`` raises — pools are single-lifecycle, like the backends that
    own them.
    """

    def __init__(self, factory: Callable[[], T],
                 close: Callable[[T], None] | None = None):
        self._factory = factory
        self._close = close if close is not None else lambda r: r.close()  # type: ignore[attr-defined]
        self._local = threading.local()
        self._lock = threading.Lock()
        self._resources: list[T] = []
        self._closed = False

    def get(self) -> T:
        """The calling thread's resource, created on first use."""
        if self._closed:
            raise ReproError("pool is closed")
        resource = getattr(self._local, "resource", None)
        if resource is None:
            with self._lock:
                if self._closed:
                    raise ReproError("pool is closed")
                resource = self._factory()
                self._resources.append(resource)
            self._local.resource = resource
        return resource

    def current(self) -> T | None:
        """The calling thread's resource, or ``None`` if not created yet."""
        return getattr(self._local, "resource", None)

    @property
    def size(self) -> int:
        """Number of live resources across all threads."""
        with self._lock:
            return len(self._resources)

    @property
    def closed(self) -> bool:
        return self._closed

    def close_all(self) -> None:
        """Close every resource ever handed out; idempotent.

        Safe to call from any thread: the per-thread resources are
        assumed to tolerate cross-thread ``close`` (sqlite connections are
        opened with ``check_same_thread=False`` for exactly this reason).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            resources, self._resources = self._resources, []
        errors: list[BaseException] = []
        for resource in resources:
            try:
                self._close(resource)
            except Exception as error:  # noqa: BLE001 — close the rest first
                errors.append(error)
        if errors:
            raise errors[0]

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.size} resource(s)"
        return f"<ThreadLocalPool {state}>"
