"""Ablation: the Section 5 decorrelation rewrite, on vs off.

DESIGN.md calls out decorrelation as the design choice that removes the
quadratic *data* blow-up of naive environment expansion (outer bindings
copied once per iteration).  With the rewrite disabled, even the merge
engine inherits the quadratic expansion; with it on, the NLJ/MSJ choice
only changes the pair-matching operator.  Three configurations, one query:

* ``expansion``    — decorrelation off (naive dynamic-interval expansion)
* ``join-nlj``     — decorrelated, nested-loop pair matching
* ``join-msj``     — decorrelated, structural merge join
"""

import pytest

from repro.api import compile_xquery
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.engine.evaluator import DIEngine
from repro.xmark.generator import cached_document
from repro.xmark.queries import Q8
from repro.xquery.lowering import document_forest

SCALE = 0.002


@pytest.fixture(scope="module")
def setup():
    compiled = compile_xquery(Q8)
    document = cached_document(SCALE, seed=42)
    bindings = {var: document_forest(document)
                for var in compiled.documents.values()}
    return compiled, bindings


def _plan(compiled, strategy: JoinStrategy, decorrelate_loops: bool):
    return compile_plan(compiled.core, strategy,
                        base_vars=compiled.documents.values(),
                        decorrelate_loops=decorrelate_loops)


def test_q8_expansion_no_decorrelation(benchmark, setup):
    compiled, bindings = setup
    plan = _plan(compiled, JoinStrategy.MSJ, decorrelate_loops=False)
    result = benchmark(DIEngine().run_plan, plan, bindings)
    assert result


def test_q8_join_nlj(benchmark, setup):
    compiled, bindings = setup
    plan = _plan(compiled, JoinStrategy.NLJ, decorrelate_loops=True)
    result = benchmark(DIEngine().run_plan, plan, bindings)
    assert result


def test_q8_join_msj(benchmark, setup):
    compiled, bindings = setup
    plan = _plan(compiled, JoinStrategy.MSJ, decorrelate_loops=True)
    result = benchmark(DIEngine().run_plan, plan, bindings)
    assert result


def test_all_configurations_agree(setup):
    compiled, bindings = setup
    results = {
        DIEngine().run_plan(
            _plan(compiled, strategy, decorrelated), bindings)
        for strategy in (JoinStrategy.NLJ, JoinStrategy.MSJ)
        for decorrelated in (True, False)
    }
    assert len(results) == 1


def test_decorrelation_removes_data_blowup(setup):
    """Without the rewrite, the expansion materializes outer copies; the
    document variable must be absent from the decorrelated plan's
    expansion requirements and present in the naive one's."""
    compiled, _ = setup
    naive = _plan(compiled, JoinStrategy.MSJ, decorrelate_loops=False)
    rewritten = _plan(compiled, JoinStrategy.MSJ, decorrelate_loops=True)
    doc_vars = set(compiled.documents.values())
    assert naive.required_outer & doc_vars
    assert not (rewritten.required_outer & doc_vars)
