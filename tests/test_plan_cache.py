"""Tests for the stats-keyed plan cache (repro.compiler.cache)."""

from __future__ import annotations

from repro.compiler.cache import CacheEntry, CacheKey, PlanCache
from repro.compiler.plan import VarNode
from repro.compiler.planner import OptimizedPlan
from repro.session import XQuerySession
from repro.xmark.queries import FIGURE1_SAMPLE

NAMES = 'document("a.xml")/site/people/person/name/text()'


def _key(shape="q", strategy="msj", optimize=True, digest="d0"):
    return CacheKey(shape, strategy, True, optimize, digest)


def _entry(doc_vars=("a.xml",), estimates=None, observed_based=()):
    return CacheEntry(OptimizedPlan(plan=VarNode("a.xml")),
                      frozenset(doc_vars),
                      dict(estimates or {}),
                      frozenset(observed_based))


class TestLookup:
    def test_miss_then_hit(self):
        cache = PlanCache()
        key = _key()
        assert cache.get(key) is None
        cache.put(key, _entry())
        assert cache.get(key) is not None
        assert cache.snapshot() == {"entries": 1, "hits": 1, "misses": 1,
                                    "invalidations": 0, "evictions": 0,
                                    "migrations": 0}

    def test_peek_touches_nothing(self):
        cache = PlanCache()
        key = _key()
        assert cache.peek(key) is None
        cache.put(key, _entry())
        assert cache.peek(key) is not None
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 0 and snapshot["misses"] == 0

    def test_distinct_digests_are_distinct_plans(self):
        cache = PlanCache()
        cache.put(_key(digest="d0"), _entry())
        assert cache.get(_key(digest="d1")) is None

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        first, second, third = (_key(shape=s) for s in "abc")
        cache.put(first, _entry())
        cache.put(second, _entry())
        cache.get(first)              # first is now most recent
        cache.put(third, _entry())    # evicts second
        assert cache.peek(second) is None
        assert cache.peek(first) is not None
        assert cache.evictions == 1


class TestInvalidation:
    def test_invalidate_document_drops_readers(self):
        cache = PlanCache()
        cache.put(_key(shape="a"), _entry(doc_vars=("x.xml",)))
        cache.put(_key(shape="b"), _entry(doc_vars=("y.xml",)))
        assert cache.invalidate_document("x.xml") == 1
        assert len(cache) == 1
        assert cache.invalidations == 1

    def test_clear(self):
        cache = PlanCache()
        key = _key()
        cache.put(key, _entry())
        cache.record_observation(key, {0: 5})
        cache.clear()
        assert len(cache) == 0
        assert cache.observations(key) == {}


class TestObservations:
    def test_keyed_by_shape_survives_digest_change(self):
        cache = PlanCache()
        cache.record_observation(_key(digest="d0"), {3: 42})
        assert cache.observations(_key(digest="d1")) == {3: 42}

    def test_distinct_per_strategy(self):
        cache = PlanCache()
        cache.record_observation(_key(strategy="msj"), {0: 1})
        assert cache.observations(_key(strategy="nlj")) == {}

    def test_small_deviation_keeps_entry(self):
        cache = PlanCache()
        key = _key()
        cache.put(key, _entry(estimates={7: 100.0}))
        assert cache.record_observation(key, {7: 150}) is False
        assert cache.peek(key) is not None

    def test_large_deviation_drops_entry(self):
        cache = PlanCache()
        key = _key()
        cache.put(key, _entry(estimates={7: 10.0}))
        assert cache.record_observation(key, {7: 10_000}) is True
        assert cache.peek(key) is None
        # ...but the observation itself is retained for the replan.
        assert cache.observations(key) == {7: 10_000}

    def test_observed_based_estimates_not_second_guessed(self):
        cache = PlanCache()
        key = _key()
        cache.put(key, _entry(estimates={7: 10.0}, observed_based=(7,)))
        assert cache.record_observation(key, {7: 10_000}) is False
        assert cache.peek(key) is not None


class TestSessionInvalidation:
    """apply_update must never serve a plan built for the old contents."""

    def _session(self):
        session = XQuerySession()
        session.add_document("a.xml", FIGURE1_SAMPLE)
        return session

    def test_update_moves_digest_and_invalidates(self):
        with self._session() as session:
            baseline = session.run(NAMES).to_xml()
            assert baseline == "Jaak TempestiCong Rosca"
            engine = session.backend_instance("engine")
            old_keys = set(engine.plan_cache.keys())
            assert len(old_keys) == 1

            updatable = session.updatable("a.xml")
            person = next(row for row in updatable.encoded.tuples
                          if row[0] == "<person>")
            session.apply_update("a.xml",
                                 updatable.delete_subtree(person[1]))

            assert len(session.run(NAMES)) == 1
            new_keys = set(engine.plan_cache.keys())
            # The stats digest moved, so the stale key cannot collide.
            assert old_keys.isdisjoint(new_keys)
            # A small update migrates the cached plan to the new digest
            # instead of dropping it (the stats stayed within the
            # deviation factor), so the re-run was a cache hit.
            assert engine.plan_cache.migrations >= 1
            assert engine.plan_cache.hits >= 1

    def test_full_reencode_update_invalidates(self):
        with self._session() as session:
            session.run(NAMES)
            engine = session.backend_instance("engine")
            updatable = session.updatable("a.xml")
            person = next(row for row in updatable.encoded.tuples
                          if row[0] == "<person>")
            session.apply_update("a.xml",
                                 updatable.delete_subtree(person[1]),
                                 incremental=False)
            assert len(session.run(NAMES)) == 1
            assert engine.plan_cache.invalidations >= 1

    def test_rerun_after_update_reflects_new_contents(self):
        with self._session() as session:
            session.run(NAMES)
            session.add_document(
                "a.xml",
                "<site><people><person><name>Zed</name></person>"
                "</people></site>")
            assert session.run(NAMES).to_xml() == "Zed"
