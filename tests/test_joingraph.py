"""Tests for join-graph isolation analysis (repro.compiler.joingraph)."""

from __future__ import annotations

from repro.compiler.joingraph import (
    analyze_join,
    join_graph,
    merge_conjuncts,
    split_conjuncts,
)
from repro.compiler.plan import (
    AndCond,
    EmptyCond,
    FnNode,
    JoinForNode,
    SomeEqualCond,
    VarNode,
)


def _sel(var, label):
    return FnNode("select", (VarNode(var),), (("label", label),))


def _join(var="x", body=None, residual=None):
    return JoinForNode(
        var=var,
        source=VarNode("doc"),
        key_outer=_sel("y", "<k>"),
        key_inner=_sel(var, "<k>"),
        body=body if body is not None else _sel(var, "<name>"),
        residual=residual,
    )


class TestConjuncts:
    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_split_single(self):
        cond = EmptyCond(VarNode("x"))
        assert split_conjuncts(cond) == [cond]

    def test_split_nested_and(self):
        a, b, c = (EmptyCond(VarNode(name)) for name in "abc")
        assert split_conjuncts(AndCond(AndCond(a, b), c)) == [a, b, c]
        assert split_conjuncts(AndCond(a, AndCond(b, c))) == [a, b, c]

    def test_merge_roundtrip(self):
        a, b, c = (EmptyCond(VarNode(name)) for name in "abc")
        merged = merge_conjuncts([a, b, c])
        assert split_conjuncts(merged) == [a, b, c]

    def test_merge_empty_is_none(self):
        assert merge_conjuncts([]) is None

    def test_merge_single_is_identity(self):
        cond = EmptyCond(VarNode("x"))
        assert merge_conjuncts([cond]) is cond


class TestAnalyzeJoin:
    def test_isolable_body(self):
        analysis = analyze_join(_join(body=_sel("x", "<name>")))
        assert analysis.isolable
        assert analysis.required_outer == frozenset()

    def test_body_reading_outer_not_isolable(self):
        body = FnNode("pair", (_sel("x", "<name>"), VarNode("y")))
        analysis = analyze_join(_join(body=body))
        assert not analysis.isolable
        assert analysis.required_outer == {"y"}

    def test_inner_only_conjunct_sinks(self):
        inner = EmptyCond(_sel("x", "<flag>"))
        analysis = analyze_join(_join(residual=inner))
        assert analysis.inner_conjuncts == (inner,)
        assert analysis.residual_conjuncts == ()

    def test_mixed_conjunction_partitions(self):
        inner = EmptyCond(_sel("x", "<flag>"))
        outer = SomeEqualCond(VarNode("x"), VarNode("z"))
        analysis = analyze_join(_join(residual=AndCond(inner, outer)))
        assert analysis.inner_conjuncts == (inner,)
        assert analysis.residual_conjuncts == (outer,)
        # z is needed on the pair sequence; the join variable never is.
        assert analysis.required_outer == {"z"}

    def test_join_keys_not_required_outer(self):
        # key_outer reads y, but keys are evaluated before pairing.
        analysis = analyze_join(_join())
        assert "y" not in analysis.required_outer


class TestJoinGraph:
    def test_preorder_enumeration(self):
        inner = _join(var="b")
        outer = _join(var="a", body=inner)
        analyses = join_graph(outer)
        assert [analysis.node.var for analysis in analyses] == ["a", "b"]
        # The outer join's body is itself a join reading only "b"'s
        # own frees, so the outer body's frees exclude "a".
        assert not analyses[0].isolable

    def test_no_joins(self):
        assert join_graph(_sel("x", "<name>")) == ()
