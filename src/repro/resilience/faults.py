"""Deterministic fault injection for backends.

The resilience machinery is only trustworthy if every path — retry,
breaker trip, half-open probe, fallback — can be exercised on demand.  A
:class:`FaultPlan` scripts faults against a wrapped
:class:`~repro.backends.base.Backend`:

* raise a chosen exception on the k-th call of a method
  (:meth:`FaultPlan.fail_on`);
* delay the k-th call by a fixed amount through an injectable sleep
  (:meth:`FaultPlan.delay_on`) — tests pass a recorder, production
  chaos runs may pass ``time.sleep``;
* slow *every* call of a method with a deterministic per-attempt delay
  schedule (:meth:`FaultPlan.slow_on`) — the latency fault that makes
  overload, shedding, and brownout paths testable without real load;
* fail calls with a seeded probability (:meth:`FaultPlan.fail_randomly`)
  for soak-style runs that stay reproducible.

Activation is a context manager: :func:`inject_faults` re-registers a
backend name with a wrapping factory and restores the original on exit,
so sessions created inside the block transparently receive the faulty
backend — exactly how a real deployment would meet a flaky engine.

    plan = FaultPlan().fail_on("execute", calls=(1, 2),
                               error=TransientBackendError("connection reset"))
    with inject_faults("sqlite", plan):
        with XQuerySession(backend="sqlite") as session:
            ...   # first two executes fail, the third succeeds
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.backends.base import Backend, ExecutionOptions
from repro.backends.registry import _REGISTRY, register_backend
from repro.errors import ReproError, TransientBackendError
from repro.obs.trace import Tracer
from repro.xml.forest import Forest


def _default_error() -> Exception:
    return TransientBackendError("injected fault")


@dataclass
class _ScriptedFault:
    """One scripted behaviour for a method: which calls, what happens."""

    method: str
    calls: frozenset[int] = frozenset()
    error: Callable[[], Exception] | None = None
    delay: float = 0.0
    probability: float = 0.0
    #: Trigger on every call (latency faults), not just listed ones.
    every: bool = False
    #: Per-attempt delay schedule, indexed by call number (cycled).
    schedule: tuple[float, ...] = ()


@dataclass
class FaultPlan:
    """A deterministic script of backend misbehaviour.

    Call counters are per method name and 1-based; the plan records every
    intercepted call in :attr:`calls` so tests can assert exactly how far
    an execution got.  ``seed`` drives the probabilistic faults;
    ``sleep`` performs injected delays (default: record only, never
    sleep — pass ``time.sleep`` to really stall).
    """

    seed: int = 0
    sleep: Callable[[float], None] | None = None
    faults: list[_ScriptedFault] = field(default_factory=list)
    #: Every intercepted (method, call number) in order.
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: Delays performed, as (method, seconds).
    delays: list[tuple[str, float]] = field(default_factory=list)
    #: Errors raised, as (method, call number, exception).
    raised: list[tuple[str, int, Exception]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._counters: dict[str, int] = {}

    # -- scripting ------------------------------------------------------------

    def fail_on(self, method: str, calls: "int | tuple[int, ...]" = 1,
                error: "Exception | Callable[[], Exception] | None" = None,
                ) -> "FaultPlan":
        """Raise on the given (1-based) call numbers of ``method``.

        ``error`` may be an exception instance (re-raised each time) or a
        zero-argument factory; defaults to a
        :class:`~repro.errors.TransientBackendError`.
        """
        if isinstance(calls, int):
            calls = (calls,)
        if error is None:
            factory: Callable[[], Exception] = _default_error
        elif isinstance(error, BaseException):
            captured = error

            def factory() -> Exception:
                return captured
        else:
            factory = error
        self.faults.append(_ScriptedFault(method, frozenset(calls), factory))
        return self

    def delay_on(self, method: str, calls: "int | tuple[int, ...]" = 1,
                 seconds: float = 0.1) -> "FaultPlan":
        """Delay the given call numbers of ``method`` by ``seconds``."""
        if isinstance(calls, int):
            calls = (calls,)
        self.faults.append(
            _ScriptedFault(method, frozenset(calls), None, delay=seconds))
        return self

    def slow_on(self, method: str,
                seconds: "float | tuple[float, ...] | list[float]",
                calls: "int | tuple[int, ...] | None" = None) -> "FaultPlan":
        """Slow ``method`` down — the latency fault behind overload tests.

        By default **every** call is delayed (``calls`` restricts to
        specific 1-based call numbers).  ``seconds`` may be one float
        (the same delay each attempt) or a sequence applied by call
        number and cycled once exhausted, so a backend that degrades
        ``0.1 → 0.5 → 2.0`` per attempt is scripted deterministically.
        Delays go through the plan's injected ``sleep``: pass
        ``time.sleep`` to really stall, or a fake clock's ``advance`` so
        shed/brownout paths run without wall-clock waits.
        """
        if isinstance(seconds, (int, float)):
            schedule: tuple[float, ...] = (float(seconds),)
        else:
            schedule = tuple(float(delay) for delay in seconds)
        if not schedule or any(delay < 0 for delay in schedule):
            raise ReproError(
                f"slow_on needs non-negative delays, got {seconds!r}")
        if calls is None:
            numbers: frozenset[int] = frozenset()
            every = True
        else:
            if isinstance(calls, int):
                calls = (calls,)
            numbers = frozenset(calls)
            every = False
        self.faults.append(
            _ScriptedFault(method, numbers, None, every=every,
                           schedule=schedule))
        return self

    def fail_randomly(self, method: str, probability: float,
                      error: "Exception | Callable[[], Exception] | None" = None,
                      ) -> "FaultPlan":
        """Fail each call of ``method`` with the given probability.

        Draws come from the plan's seeded RNG, so a given seed produces
        the same failure pattern on every run.
        """
        if not 0.0 <= probability <= 1.0:
            raise ReproError(
                f"probability must be in [0, 1], got {probability}")
        if error is None:
            factory: Callable[[], Exception] = _default_error
        elif isinstance(error, BaseException):
            captured = error

            def factory() -> Exception:
                return captured
        else:
            factory = error
        self.faults.append(
            _ScriptedFault(method, frozenset(), factory,
                           probability=probability))
        return self

    # -- interception ---------------------------------------------------------

    def call_count(self, method: str) -> int:
        return self._counters.get(method, 0)

    def apply(self, method: str) -> None:
        """Record one call of ``method`` and act out any scripted fault."""
        count = self._counters.get(method, 0) + 1
        self._counters[method] = count
        self.calls.append((method, count))
        for fault in self.faults:
            if fault.method != method:
                continue
            triggered = (fault.every or count in fault.calls or
                         (fault.probability > 0.0
                          and self._rng.random() < fault.probability))
            if not triggered:
                continue
            delay = fault.delay
            if fault.schedule:
                delay = fault.schedule[(count - 1) % len(fault.schedule)]
            if delay > 0.0:
                self.delays.append((method, delay))
                if self.sleep is not None:
                    self.sleep(delay)
            if fault.error is not None:
                error = fault.error()
                self.raised.append((method, count, error))
                raise error

    def reset_counters(self) -> None:
        """Zero the call counters (the script itself is kept)."""
        self._counters.clear()
        self.calls.clear()
        self.delays.clear()
        self.raised.clear()


class FaultyBackend(Backend):
    """A backend decorator acting out a :class:`FaultPlan`.

    Faults fire *before* delegating, so a scripted ``execute`` failure
    never touches the inner backend — the call looks like a transport
    fault from the session's point of view.  Interceptable methods:
    ``prepare``, ``execute``, ``close``.
    """

    def __init__(self, inner: Backend, plan: FaultPlan):
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.capabilities = inner.capabilities

    # Delegate the whole public surface; the base-class state (prepared
    # maps, closed flag) lives in the inner backend.

    def instrument(self, tracer: Tracer | None) -> None:
        self.inner.instrument(tracer)

    def prepare(self, documents: Mapping[str, Forest]) -> None:
        self.plan.apply("prepare")
        self.inner.prepare(documents)

    def invalidate(self, name: str) -> None:
        self.inner.invalidate(name)

    @property
    def prepared(self) -> tuple[str, ...]:
        return self.inner.prepared

    def execute(self, compiled, options: ExecutionOptions | None = None):
        self.plan.apply("execute")
        return self.inner.execute(compiled, options)

    def runner(self, compiled, options: ExecutionOptions | None = None):
        inner_run = self.inner.runner(compiled, options)

        def run() -> Forest:
            self.plan.apply("execute")
            return inner_run()

        return run

    def _runner(self, compiled, options):  # pragma: no cover - via runner()
        return self.inner.runner(compiled, options)

    def close(self) -> None:
        self.plan.apply("close")
        self.inner.close()

    def __repr__(self) -> str:
        return f"<FaultyBackend wrapping {self.inner!r}>"


@contextmanager
def inject_faults(backend_name: str, plan: FaultPlan) -> Iterator[FaultPlan]:
    """Wrap a registered backend with ``plan`` for the duration of a block.

    Backends created by name inside the block (sessions, ``run_xquery``,
    the CLI) are transparently wrapped; the original factory is restored
    on exit even if the block raises.
    """
    try:
        original = _REGISTRY[backend_name]
    except KeyError:
        from repro.backends.registry import registered_backends
        from repro.errors import UnknownBackendError

        raise UnknownBackendError(backend_name, registered_backends()) from None

    def faulty_factory(**options: object) -> Backend:
        return FaultyBackend(original(**options), plan)

    register_backend(faulty_factory, name=backend_name, replace=True)
    try:
        yield plan
    finally:
        register_backend(original, name=backend_name, replace=True)
