"""Unit tests for the Figure 2 operator algebra (the reference semantics)."""

import pytest

from repro.xml import operations as ops
from repro.xml.forest import Node, attribute, element, text
from repro.xml.text_parser import parse_forest


def f(source: str):
    """Shorthand: parse a forest from XML text."""
    return parse_forest(source)


class TestConstructors:
    def test_empty_forest(self):
        assert ops.empty_forest() == ()

    def test_xnode_wraps(self):
        result = ops.xnode("<a>", f("<b/><c/>"))
        assert len(result) == 1
        assert result[0].label == "<a>"
        assert [child.label for child in result[0].children] == ["<b>", "<c>"]

    def test_xnode_empty_content(self):
        assert ops.xnode("<a>", ()) == (element("a"),)

    def test_concat_order(self):
        result = ops.concat(f("<a/>"), f("<b/>"))
        assert [tree.label for tree in result] == ["<a>", "<b>"]

    def test_concat_identity(self):
        trees = f("<a/>")
        assert ops.concat((), trees) == trees
        assert ops.concat(trees, ()) == trees


class TestHorizontal:
    def test_head(self):
        assert ops.head(f("<a/><b/>")) == f("<a/>")
        assert ops.head(()) == ()

    def test_tail(self):
        assert ops.tail(f("<a/><b/><c/>")) == f("<b/><c/>")
        assert ops.tail(()) == ()
        assert ops.tail(f("<a/>")) == ()

    def test_head_tail_partition(self):
        trees = f("<a><x/></a><b/><c/>")
        assert ops.concat(ops.head(trees), ops.tail(trees)) == trees

    def test_reverse_top_level_only(self):
        trees = f("<a><x/><y/></a><b/>")
        reversed_trees = ops.reverse(trees)
        assert [t.label for t in reversed_trees] == ["<b>", "<a>"]
        # Children order inside <a> is untouched.
        assert [c.label for c in reversed_trees[1].children] == ["<x>", "<y>"]

    def test_reverse_involution(self):
        trees = f("<a/><b/><c/>")
        assert ops.reverse(ops.reverse(trees)) == trees

    def test_select(self):
        trees = f("<a/><b/><a><c/></a>")
        selected = ops.select("<a>", trees)
        assert len(selected) == 2
        assert selected[1].children[0].label == "<c>"

    def test_select_no_match(self):
        assert ops.select("<zz>", f("<a/>")) == ()

    def test_textnodes(self):
        trees = (text("x"), element("a"), text("y"), attribute("id", "v"))
        assert ops.textnodes(trees) == (text("x"), text("y"))

    def test_distinct_keeps_first(self):
        trees = f("<a>1</a><b/><a>1</a><a>2</a>")
        result = ops.distinct(trees)
        assert result == f("<a>1</a><b/><a>2</a>")

    def test_distinct_structural_not_identity(self):
        # Two separately built but equal trees collapse.
        trees = (element("a", (text("x"),)), element("a", (text("x"),)))
        assert len(ops.distinct(trees)) == 1

    def test_sort_structural_order(self):
        trees = f("<b/><a>2</a><a>1</a>")
        result = ops.sort(trees)
        assert result == f("<a>1</a><a>2</a><b/>")

    def test_sort_stable_for_equal_trees(self):
        first = element("a", (text("same"),))
        second = element("a", (text("same"),))
        result = ops.sort((second, first))
        assert result[0] is second  # stable: original order of equal trees


class TestVertical:
    def test_roots_strips_children(self):
        result = ops.roots(f("<a><b/></a><c/>"))
        assert result == (Node("<a>"), Node("<c>"))

    def test_children_concatenates(self):
        result = ops.children(f("<a><x/><y/></a><b><z/></b>"))
        assert [tree.label for tree in result] == ["<x>", "<y>", "<z>"]

    def test_children_keeps_subtrees(self):
        result = ops.children(f("<a><x><deep/></x></a>"))
        assert result[0].children[0].label == "<deep>"

    def test_children_of_leaves_is_empty(self):
        assert ops.children(f("<a/><b/>")) == ()

    def test_subtrees_dfs_order(self):
        trees = f("<a><b><c/></b><d/></a>")
        labels = [tree.label for tree in ops.subtrees_dfs(trees)]
        assert labels == ["<a>", "<b>", "<c>", "<d>"]

    def test_subtrees_dfs_keeps_full_subtrees(self):
        trees = f("<a><b><c/></b></a>")
        result = ops.subtrees_dfs(trees)
        assert result[1] == f("<b><c/></b>")[0]

    def test_subtrees_dfs_count(self):
        trees = f("<a><b/><c><d/></c></a>")
        assert len(ops.subtrees_dfs(trees)) == 4


class TestBooleans:
    def test_equal(self):
        assert ops.equal(f("<a><b/></a>"), f("<a><b/></a>"))
        assert not ops.equal(f("<a/>"), f("<b/>"))
        assert ops.equal((), ())

    def test_less(self):
        assert ops.less(f("<a/>"), f("<b/>"))
        assert not ops.less(f("<b/>"), f("<a/>"))
        assert not ops.less(f("<a/>"), f("<a/>"))
        assert ops.less((), f("<a/>"))

    def test_empty(self):
        assert ops.empty(())
        assert not ops.empty(f("<a/>"))


class TestDerived:
    def test_tree_count(self):
        assert ops.tree_count(f("<a/><b/><c/>")) == 3
        assert ops.tree_count(()) == 0

    def test_count_forest(self):
        assert ops.count_forest(f("<a/><b/>")) == (text("2"),)
        assert ops.count_forest(()) == (text("0"),)

    def test_data_of_attribute(self):
        result = ops.data((attribute("id", "person0"),))
        assert result == (text("person0"),)

    def test_data_of_element(self):
        result = ops.data(f("<name>Ada</name>"))
        assert result == (text("Ada"),)

    def test_data_passes_text_through(self):
        result = ops.data((text("x"), element("a", (text("y"),))))
        assert result == (text("x"), text("y"))

    def test_data_skips_nested_elements(self):
        # data() is shallow: only direct text children are extracted.
        result = ops.data(f("<a><b>deep</b>top</a>"))
        assert result == (text("top"),)


class TestAlgebraicLaws:
    """Cross-operator invariants used throughout the translation."""

    @pytest.fixture
    def trees(self):
        return f("<a><x/><y>t</y></a><b/><c><z/></c>")

    def test_roots_then_children_empty(self, trees):
        assert ops.children(ops.roots(trees)) == ()

    def test_select_is_idempotent(self, trees):
        once = ops.select("<a>", trees)
        assert ops.select("<a>", once) == once

    def test_subtrees_includes_roots_as_heads(self, trees):
        subtrees = ops.subtrees_dfs(trees)
        root_labels = [tree.label for tree in ops.roots(trees)]
        for label in root_labels:
            assert label in [tree.label for tree in subtrees]

    def test_concat_associative(self, trees):
        a, b, c = trees[:1], trees[1:2], trees[2:]
        assert ops.concat(ops.concat(a, b), c) == ops.concat(a, ops.concat(b, c))

    def test_sort_produces_nondecreasing_sequence(self, trees):
        from repro.xml.forest import compare_trees
        result = ops.sort(ops.concat(trees, ops.reverse(trees)))
        for left, right in zip(result, result[1:]):
            assert compare_trees(left, right) <= 0
