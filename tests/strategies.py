"""Hypothesis strategies for XF forests and related inputs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xml.forest import Node

#: Small label alphabets keep shrunk examples readable while still
#: exercising all three label classes.
ELEMENT_LABELS = ("<a>", "<b>", "<c>")
ATTRIBUTE_LABELS = ("@id", "@k")
TEXT_LABELS = ("x", "y", "longer text", "")


@st.composite
def nodes(draw, max_depth: int = 4, max_children: int = 4):
    """A random tree with bounded depth and fanout."""
    label = draw(st.sampled_from(ELEMENT_LABELS + ATTRIBUTE_LABELS
                                 + TEXT_LABELS))
    if max_depth <= 1:
        return Node(label)
    count = draw(st.integers(min_value=0, max_value=max_children))
    children = [draw(nodes(max_depth=max_depth - 1,
                           max_children=max_children))
                for _ in range(count)]
    return Node(label, children)


@st.composite
def forests(draw, max_trees: int = 4, max_depth: int = 4):
    """A random forest (possibly empty)."""
    count = draw(st.integers(min_value=0, max_value=max_trees))
    return tuple(draw(nodes(max_depth=max_depth)) for _ in range(count))


@st.composite
def xml_safe_nodes(draw, max_depth: int = 4):
    """Trees that serialize to well-formed XML and parse back.

    Elements with attribute children first (parser convention), attribute
    values and text with XML-safe characters, no empty text nodes.
    """
    text_alphabet = st.text(
        alphabet="abz 09'", min_size=1, max_size=6
    ).filter(lambda s: s.strip())
    # Attribute values additionally exercise tab/newline/CR: the
    # serializer must emit them as character references (&#9; &#10;
    # &#13;) for the round-trip to survive attribute-value normalization.
    attr_alphabet = st.text(
        alphabet="abz 09'\t\n\r", min_size=1, max_size=6
    ).filter(lambda s: s.strip())
    if max_depth <= 1:
        return Node(draw(text_alphabet))
    tag = draw(st.sampled_from(("<a>", "<b>", "<c>")))
    attr_count = draw(st.integers(min_value=0, max_value=2))
    attr_names = draw(st.permutations(["@p", "@q"]))[:attr_count]
    attributes = [Node(name, (Node(draw(attr_alphabet)),))
                  for name in sorted(attr_names)]
    child_count = draw(st.integers(min_value=0, max_value=3))
    content = []
    previous_text = False
    for _ in range(child_count):
        child = draw(xml_safe_nodes(max_depth=max_depth - 1))
        # Two adjacent text nodes would merge on reparse; skip those.
        if child.is_text():
            if previous_text:
                continue
            previous_text = True
        else:
            previous_text = False
        content.append(child)
    return Node(tag, attributes + content)


@st.composite
def xml_safe_forests(draw, max_trees: int = 3):
    """Forests of XML-safe element trees (roundtrippable)."""
    count = draw(st.integers(min_value=0, max_value=max_trees))
    trees = []
    for _ in range(count):
        tree = draw(xml_safe_nodes())
        if tree.is_text():
            tree = Node("<t>", (tree,))
        trees.append(tree)
    return tuple(trees)
