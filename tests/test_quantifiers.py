"""Tests for quantified expressions (some/every … satisfies)."""

import pytest

from repro import run_xquery
from repro.errors import LoweringError, XQuerySyntaxError
from repro.xquery.ast import SQuantified
from repro.xquery.parser import parse_xquery

XML = """
<r>
 <team n="t1"><m s="dev"/><m s="dev"/></team>
 <team n="t2"><m s="dev"/><m s="qa"/></team>
 <team n="t3"></team>
</r>
"""
DOCS = {"d": XML}

BACKENDS = [("interpreter", "msj"), ("engine", "nlj"),
            ("engine", "msj"), ("sqlite", "msj")]


def run_all(query: str):
    outputs = {
        run_xquery(query, DOCS, backend=backend, strategy=strategy).to_xml()
        for backend, strategy in BACKENDS
    }
    assert len(outputs) == 1, f"backends diverged: {outputs}"
    return outputs.pop()


class TestParsing:
    def test_some(self):
        body = parse_xquery('some $m in $t/m satisfies $m/@s = "qa"')
        # Quantifiers parse inside boolean positions; at top level the
        # parser accepts them, lowering rejects them as boolean-valued.
        assert isinstance(body.body, SQuantified)
        assert body.body.quantifier == "some"

    def test_every(self):
        body = parse_xquery('every $m in $t/m satisfies empty($m/x)')
        assert body.body.quantifier == "every"

    def test_missing_satisfies(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery('some $m in $t/m where $m = "x"')

    def test_boolean_position_only(self):
        with pytest.raises(LoweringError):
            from repro.xquery.lowering import lower_query
            lower_query(parse_xquery('some $m in $t satisfies empty($m)'))


class TestSemantics:
    def test_some_finds_witness(self):
        result = run_all(
            'for $t in document("d")/r/team '
            'where some $m in $t/m satisfies $m/@s = "qa" '
            'return $t/@n')
        assert result == '[@n="t2"]'

    def test_some_false_without_witness(self):
        result = run_all(
            'for $t in document("d")/r/team '
            'where some $m in $t/m satisfies $m/@s = "boss" '
            'return $t/@n')
        assert result == ""

    def test_every_vacuously_true_on_empty(self):
        result = run_all(
            'for $t in document("d")/r/team '
            'where every $m in $t/m satisfies $m/@s = "dev" '
            'return $t/@n')
        assert result == '[@n="t1"][@n="t3"]'

    def test_negated_quantifier(self):
        result = run_all(
            'for $t in document("d")/r/team '
            'where not(every $m in $t/m satisfies $m/@s = "dev") '
            'return $t/@n')
        assert result == '[@n="t2"]'

    def test_quantifier_combined_with_and(self):
        result = run_all(
            'for $t in document("d")/r/team '
            'where some $m in $t/m satisfies $m/@s = "dev" '
            '  and not(empty($t/m)) '
            'return $t/@n')
        assert result == '[@n="t1"][@n="t2"]'

    def test_quantifier_in_predicate(self):
        result = run_all(
            'document("d")/r/team[some $m in ./m satisfies $m/@s = "qa"]/@n')
        assert result == '[@n="t2"]'

    def test_nested_quantifiers(self):
        result = run_all(
            'for $r in document("d")/r '
            'where some $t in $r/team satisfies '
            '      (every $m in $t/m satisfies $m/@s = "dev") '
            'return <yes/>')
        assert result == "<yes/>"
