"""The process tier: shared-memory columns, the worker pool, session wiring.

Every pool here is tiny (1–2 workers) and short-lived; the container
running CI may have a single core, so these tests assert *correctness*
of the process tier — result equality, crash recovery, cancellation,
segment hygiene — never throughput (the bench's ``process_parallel``
section owns that, gated on multi-core hosts only).
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency.procpool import ProcessQueryPool
from repro.engine.columns import (
    IntervalColumns,
    SharedColumns,
    export_columns,
)
from repro.engine.evaluator import DIEngine
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceBudgetError,
    TransientBackendError,
    WorkerDiedError,
)
from repro.resilience import CancellationToken, QueryGuard, ResourceBudget
from repro.session import XQuerySession
from repro.xmark.generator import generate_document

NAMES = 'document("auction.xml")/site/people/person/name'
COUNT = 'count(document("auction.xml")/site/people/person)'

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _encoding(document):
    from repro.xquery.lowering import document_forest

    return DIEngine.prepare_document(document_forest((document,)))


def _doc_var(query: str) -> str:
    from repro.api import compile_xquery

    return next(iter(compile_xquery(query).documents.values()))


# -- shared-memory columns across a real process boundary ----------------------

def _round_trip_child(conn) -> None:
    """Echo worker: rebuild whatever relation payload arrives, ship the
    tuples back by value.  Top-level so spawn can import it."""
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        kind, payload = message
        if kind == "shm":
            attachment = payload.attach()
            try:
                conn.send(attachment.columns.tuples())
            finally:
                attachment.detach()
        else:
            conn.send(payload.tuples())
    conn.close()


@pytest.fixture(scope="module")
def echo_child():
    """One long-lived child process all hypothesis examples go through."""
    import multiprocessing

    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    parent, child = context.Pipe()
    process = context.Process(target=_round_trip_child, args=(child,),
                              daemon=True)
    process.start()
    child.close()

    def round_trip(columns: IntervalColumns) -> list:
        if len(columns) and columns.is_array \
                and not any("\x00" in label for label in columns.s):
            descriptor, shm = export_columns(columns)
            try:
                parent.send(("shm", descriptor))
                return parent.recv()
            finally:
                shm.close()
                shm.unlink()
        parent.send(("pickle", columns))
        return parent.recv()

    yield round_trip
    parent.send(None)
    process.join(timeout=5)
    parent.close()


#: Rows whose endpoints straddle the int64 boundary, so both the
#: ``array('q')`` / shared-memory path and the bignum list fallback get
#: exercised by the same property.
_rows = st.lists(
    st.tuples(
        st.text(alphabet="ab<>/@ xyz\x00é", min_size=0, max_size=6),
        st.integers(min_value=0, max_value=2 ** 66),
        st.integers(min_value=0, max_value=2 ** 66),
    ),
    max_size=12,
)


class TestColumnsAcrossProcesses:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=_rows)
    def test_child_process_sees_equal_relation(self, echo_child, rows):
        """A relation rebuilt in a child — attached zero-copy when it is
        array-backed, pickled when bignum or NUL-labelled — equals the
        parent's, row for row."""
        columns = IntervalColumns.from_tuples(rows, sort=True)
        assert echo_child(columns) == columns.tuples()

    def test_bignum_columns_refuse_shared_memory(self):
        columns = IntervalColumns.from_tuples(
            [("<a>", 0, 2 ** 70)], sort=True)
        assert not columns.is_array
        with pytest.raises(ValueError, match="bignum"):
            export_columns(columns)
        # ...but the pickling contract still round-trips them by value
        # (only the overflowing column falls back to a list).
        clone = pickle.loads(pickle.dumps(columns))
        assert clone == columns and isinstance(clone.r, list)

    def test_nul_label_refuses_shared_memory(self):
        columns = IntervalColumns.from_tuples([("a\x00b", 0, 1)])
        with pytest.raises(ValueError, match="NUL"):
            export_columns(columns)

    def test_attached_view_is_zero_copy(self):
        columns = IntervalColumns.from_tuples(
            [("<a>", 0, 3), ("x", 1, 2)])
        descriptor, shm = export_columns(columns)
        try:
            attachment = SharedColumns(
                descriptor.name, descriptor.count,
                descriptor.label_bytes).attach()
            try:
                assert isinstance(attachment.columns.l, memoryview)
                assert attachment.columns.is_array
                assert attachment.columns.tuples() == columns.tuples()
            finally:
                attachment.detach()
        finally:
            shm.close()
            shm.unlink()


# -- the pool itself -----------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_encoding():
    return _encoding(generate_document(0.0005, seed=42))


@pytest.fixture
def pool(tiny_encoding):
    active = ProcessQueryPool(workers=2)
    active.register_document(_doc_var(NAMES), tiny_encoding)
    yield active
    active.close()


def _reference(query: str, encoding) -> tuple:
    from repro.api import compile_xquery
    from repro.backends.base import ExecutionOptions
    from repro.backends.registry import create_backend

    backend = create_backend("engine")
    try:
        compiled = compile_xquery(query)
        backend.adopt_encoded(_doc_var(query), encoding)
        return backend.execute(compiled, ExecutionOptions())
    finally:
        backend.close()


class TestProcessQueryPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessQueryPool(workers=0)
        with pytest.raises(ValueError, match="positive"):
            ProcessQueryPool(workers=-2)

    def test_execute_matches_in_process_engine(self, pool, tiny_encoding):
        forest, worker = pool.execute(NAMES)
        assert worker.startswith("procpool-")
        assert len(forest) > 0  # non-vacuous equality below
        assert forest == _reference(NAMES, tiny_encoding)

    def test_scatter_equals_execute(self, pool):
        whole, _worker = pool.execute(NAMES)
        pool.ensure_sharded(_doc_var(NAMES))
        sharded, workers = pool.scatter(NAMES)
        assert sharded == whole
        assert len(workers) == pool.size

    def test_document_replacement_propagates(self, pool):
        var = _doc_var(COUNT)
        before, _ = pool.execute(COUNT)
        replacement = _encoding(generate_document(0.001, seed=7))
        pool.register_document(var, replacement)
        after, _ = pool.execute(COUNT)
        assert after == _reference(COUNT, replacement)
        assert after != before

    def test_crashed_worker_respawns(self, tiny_encoding):
        with ProcessQueryPool(workers=1) as pool:
            pool.register_document(_doc_var(NAMES), tiny_encoding)
            pool._workers[0].process.kill()
            pool._workers[0].process.join(timeout=5)
            with pytest.raises(WorkerDiedError) as exc:
                pool.execute(NAMES)
            # Transient: the retry/breaker/fallback machinery applies.
            assert isinstance(exc.value, TransientBackendError)
            # The pool respawned before surfacing, so a retry succeeds.
            forest, _worker = pool.execute(NAMES)
            assert forest == _reference(NAMES, tiny_encoding)

    def test_cancellation_kills_the_worker(self, pool):
        token = CancellationToken()
        pool._acquire(0)
        worker = pool._workers[0]
        try:
            worker.send(("sleep", 30.0))  # test hook: unresponsive worker
            timer = threading.Timer(0.2, token.cancel, args=("user gone",))
            timer.start()
            try:
                with pytest.raises(QueryCancelledError, match="user gone"):
                    worker.wait(token=token)
            finally:
                timer.cancel()
            assert not worker.alive
            pool._respawn(0)
        finally:
            pool._release(0)
        forest, _ = pool.execute(NAMES)  # the pool is healthy again
        assert len(forest) > 0

    def test_hung_worker_killed_after_grace(self, pool):
        pool._acquire(0)
        worker = pool._workers[0]
        try:
            worker.send(("sleep", 30.0))
            started = time.monotonic()
            with pytest.raises(QueryTimeoutError) as exc:
                worker.wait(deadline_at=time.monotonic() + 0.3,
                            deadline=0.1)
            assert time.monotonic() - started < 5.0
            assert exc.value.backend == "procpool"
            pool._respawn(0)
        finally:
            pool._release(0)

    def test_worker_side_budget_error_is_typed(self, pool):
        # The worker raises inside its own process; the parent must see
        # the same typed exception, not a pickled stand-in.
        guard = QueryGuard(budget=ResourceBudget(max_tuples=1))
        with pytest.raises(ResourceBudgetError) as exc:
            pool.execute(NAMES, guard=guard)
        assert exc.value.resource == "tuples"

    def test_segments_unlinked_on_close(self, tiny_encoding):
        from multiprocessing.shared_memory import SharedMemory

        pool = ProcessQueryPool(workers=2)
        pool.register_document(_doc_var(NAMES), tiny_encoding)
        pool.ensure_sharded(_doc_var(NAMES))
        names = pool.segment_names
        assert names, "expected live segments for full + shard exports"
        pool.close()
        assert pool.segment_names == ()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_unregister_unlinks_segments(self, pool):
        from multiprocessing.shared_memory import SharedMemory

        var = _doc_var(NAMES)
        names = pool.segment_names
        assert names
        pool.unregister_document(var)
        assert pool.segment_names == ()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_spawn_start_method(self, tiny_encoding):
        with ProcessQueryPool(workers=1, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            pool.register_document(_doc_var(NAMES), tiny_encoding)
            forest, _ = pool.execute(NAMES)
            assert forest == _reference(NAMES, tiny_encoding)

    def test_bignum_document_is_pickled_not_shared(self, pool):
        var = "$bignum"
        columns = IntervalColumns.from_tuples(
            [("<a>", 0, 2 ** 70), ("x", 1, 2)], sort=True)
        segments_before = pool.segment_names
        pool.register_document(var, (columns, 2 ** 70))
        assert pool.segment_names == segments_before  # no new segment
        pool.unregister_document(var)


# -- session wiring ------------------------------------------------------------

@pytest.fixture
def session(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_WORKERS", "2")
    with XQuerySession(slow_seconds=0.0) as active:
        active.add_xmark_document("auction.xml", 0.0005)
        yield active


class TestSessionProcessTier:
    def test_process_tier_matches_thread_tier(self, session):
        batch = [NAMES, COUNT] * 2
        threaded = session.run_many(batch, tier="thread")
        processed = session.run_many(batch, tier="process")
        assert [r.to_xml() for r in processed] \
            == [r.to_xml() for r in threaded]
        assert all(r.backend == "procpool" for r in processed)

    def test_flight_recorder_attributes_worker(self, session):
        session.run_many([NAMES] * 2, tier="process")
        records = [r for r in session.recorder.records()
                   if r.backend == "procpool"]
        assert records
        assert all(r.worker.startswith("procpool-") for r in records)
        assert "worker" in records[-1].to_dict()

    def test_thread_tier_never_attributes_worker(self, session):
        session.run(NAMES)
        record = session.recorder.records()[-1]
        assert record.backend == "engine" and record.worker == ""

    def test_run_async_matches_run(self, session):
        expected = session.run(NAMES).to_xml()
        result = asyncio.run(session.run_async(NAMES))
        assert result.to_xml() == expected

    def test_run_sharded_matches_run(self, session):
        expected = session.run(NAMES).to_xml()
        result = session.run_sharded(NAMES)
        assert result.backend == "procpool"
        assert result.to_xml() == expected
        record = session.recorder.records()[-1]
        # Scatter names every participating worker.
        assert record.worker.count("procpool-") == 2

    def test_process_tier_rejects_incompatible_backend(self, session):
        with pytest.raises(ValueError, match="promoted"):
            session.run_many([NAMES] * 2, tier="process", backend="sqlite")

    def test_unknown_tier_rejected(self, session):
        with pytest.raises(ValueError, match="tier"):
            session.run_many([NAMES], tier="fiber")

    @pytest.mark.parametrize("bad", [0, -1, True, 2.0])
    def test_max_workers_must_be_positive_int(self, session, bad):
        with pytest.raises(ValueError, match="max_workers"):
            session.run_many([NAMES], max_workers=bad)

    def test_executor_grows_but_never_churns_on_shrink(self, session):
        session.run_many([NAMES] * 2, max_workers=4)
        grown = session._executor
        assert session._executor_workers == 4
        session.run_many([NAMES] * 2, max_workers=2)
        assert session._executor is grown  # smaller request: no rebuild
        assert session._executor_workers == 4
        session.run_many([NAMES] * 2, max_workers=6)
        assert session._executor is not grown
        assert session._executor_workers == 6

    def test_auto_tier_promotes_only_multicore_big_batches(
            self, session, monkeypatch):
        monkeypatch.setattr("repro.session.os.cpu_count", lambda: 4)
        assert session._tier_backend("auto", None, 8) == "procpool"
        assert session._tier_backend("auto", None, 2) is None  # small batch
        assert session._tier_backend("auto", "sqlite", 8) == "sqlite"
        monkeypatch.setattr("repro.session.os.cpu_count", lambda: 1)
        assert session._tier_backend("auto", None, 8) is None

    def test_session_close_unlinks_all_segments(self, monkeypatch):
        from multiprocessing.shared_memory import SharedMemory

        monkeypatch.setenv("REPRO_POOL_WORKERS", "2")
        active = XQuerySession()
        active.add_xmark_document("auction.xml", 0.0005)
        active.run_many([NAMES] * 2, tier="process")
        active.run_sharded(NAMES)
        target = active.backend_instance("procpool")
        names = target.segment_names
        assert names
        active.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)
