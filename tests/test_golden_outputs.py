"""Golden-output regression tests.

The XMark generator is seeded and the evaluators deterministic, so every
query has one exact answer per (scale, seed).  These digests pin the
end-to-end behaviour: any change to the generator, the lowering, an
operator, or the engine that alters any query's result — even by one
character or a reordering — fails here.

If a change is *intentional* (e.g. the generator's sampling changed),
regenerate the table with::

    python -c "import tests.test_golden_outputs as g; g.regenerate()"
"""

import hashlib

import pytest

from repro import run_xquery
from repro.xmark.generator import generate_document
from repro.xmark.queries import EXTRA_QUERIES, QUERIES

SCALE = 0.0005
SEED = 42

#: query name -> (sha256[:16] of result XML, result length).
GOLDEN = {
    "Q1": ("e3b0c44298fc1c14", 0),
    "Q13": ("8e220e74852d2af4", 414),
    "Q15": ("cb3b8d67eca2db17", 521),
    "Q17": ("ce96e54ed8e5652a", 190),
    "Q19": ("ffb4fe25c333de20", 51),
    "Q6": ("4b708ec5e1e089c7", 114),
    "Q7": ("e3b308a08cca0e1d", 55),
    "Q8": ("ffb3bb5f613c3213", 144),
    "Q8_ORIGINAL": ("2050923d257c68ee", 471),
    "Q9": ("ea1416fc21e1bc67", 221),
}

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES}


def _digest(value: str) -> str:
    return hashlib.sha256(value.encode()).hexdigest()[:16]


@pytest.fixture(scope="module")
def documents():
    return {"auction.xml": (generate_document(SCALE, seed=SEED),)}


def test_golden_table_covers_all_queries():
    assert set(GOLDEN) == set(ALL_QUERIES)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_output(name, documents):
    output = run_xquery(ALL_QUERIES[name], documents).to_xml()
    expected_digest, expected_length = GOLDEN[name]
    assert len(output) == expected_length, f"{name} length changed"
    assert _digest(output) == expected_digest, f"{name} content changed"


@pytest.mark.parametrize("name", ["Q8", "Q9", "Q13"])
def test_golden_holds_across_backends(name, documents):
    """The pinned output is backend-independent."""
    expected_digest, _ = GOLDEN[name]
    for backend, strategy in (("interpreter", "msj"), ("engine", "nlj")):
        output = run_xquery(ALL_QUERIES[name], documents,
                            backend=backend, strategy=strategy).to_xml()
        assert _digest(output) == expected_digest


def regenerate() -> None:  # pragma: no cover — developer tool
    documents = {"auction.xml": (generate_document(SCALE, seed=SEED),)}
    for name in sorted(ALL_QUERIES):
        output = run_xquery(ALL_QUERIES[name], documents).to_xml()
        print(f'    "{name}": ("{_digest(output)}", {len(output)}),')
