"""Reproduce the paper's headline result at laptop scale.

Sweeps XMark Q8 (the single-join query of Section 6.2) over growing
documents and times three evaluation strategies:

* the naive nested-loop interpreter (the competitor class),
* DI-NLJ — the dynamic-interval engine with nested-loop plans,
* DI-MSJ — the same engine with the Section 5 structural merge join.

The quadratic strategies blow past the time budget while DI-MSJ stays
near-linear — Figure 9's shape.  Also prints the Figure 10 breakdown:
where each plan spends its time (paths / join / construction).

Run with:  python examples/join_scaling.py [--quick]
"""

import argparse

from repro.bench.harness import sweep
from repro.bench.reporting import format_breakdown_table, format_timing_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales and tighter timeout")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    args = parser.parse_args()

    if args.quick:
        scales = [0.0005, 0.001, 0.002]
        timeout = args.timeout or 10.0
    else:
        scales = [0.001, 0.002, 0.005, 0.01, 0.02]
        timeout = args.timeout or 60.0

    systems = ["naive", "di-nlj", "di-msj"]
    print(f"Sweeping Q8 over scale factors {scales} "
          f"(timeout {timeout:.0f}s per cell)...\n")
    result = sweep("Q8", systems, scales, timeout=timeout, verbose=True)
    print()
    print(format_timing_table(result, "Q8 TIMINGS (CPU SEC) — cf. Figure 9"))

    print("\nCollecting the per-component breakdown (cf. Figure 10)...")
    breakdowns = {
        system: sweep("Q8", [system], scales[:3], timeout=timeout,
                      collect_breakdown=True)
        for system in ("di-nlj", "di-msj")
    }
    print(format_breakdown_table(
        breakdowns, "Q8 TIMING BREAKDOWN — cf. Figure 10"))

    print("\nReading: the join share of DI-NLJ approaches 100% as documents"
          "\ngrow (quadratic work), while DI-MSJ stays dominated by path"
          "\nextraction — exactly the paper's Figure 10 contrast.")


if __name__ == "__main__":
    main()
