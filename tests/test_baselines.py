"""Tests for the nested-loop baseline evaluator and its resource models."""

import pytest

from repro.baselines.naive import (
    MemoryLimitExceeded,
    NaiveEvaluator,
    WorkLimitExceeded,
)
from repro.xml.text_parser import parse_forest
from repro.xquery.interpreter import evaluate
from repro.xquery.lowering import document_forest, lower_query
from repro.xquery.parser import parse_xquery


def compile_with_bindings(source: str, documents: dict):
    core, docs = lower_query(parse_xquery(source))
    bindings = {var: document_forest(documents[uri])
                for uri, var in docs.items()}
    return core, bindings


SAMPLE = """
<site><people>
 <person id="p0"><name>Ada</name></person>
 <person id="p1"><name>Bob</name></person>
</people></site>
"""


class TestCorrectness:
    def test_matches_reference_interpreter(self, xmark_tiny):
        from repro.xmark.queries import Q8
        core, bindings = compile_with_bindings(
            Q8, {"auction.xml": (xmark_tiny,)})
        assert NaiveEvaluator().evaluate(core, bindings) == evaluate(
            core, bindings)

    def test_simple_query(self):
        core, bindings = compile_with_bindings(
            'document("d")/site/people/person/name/text()',
            {"d": parse_forest(SAMPLE)})
        result = NaiveEvaluator().evaluate(core, bindings)
        assert [n.label for n in result] == ["Ada", "Bob"]


class TestWorkAccounting:
    def test_work_counted(self):
        core, bindings = compile_with_bindings(
            'document("d")//name', {"d": parse_forest(SAMPLE)})
        evaluator = NaiveEvaluator()
        evaluator.evaluate(core, bindings)
        assert evaluator.work > 0

    def test_work_budget_enforced(self):
        core, bindings = compile_with_bindings(
            'document("d")//name', {"d": parse_forest(SAMPLE)})
        with pytest.raises(WorkLimitExceeded):
            NaiveEvaluator(work_budget=3).evaluate(core, bindings)

    def test_work_superlinear_for_join(self, xmark_tiny, xmark_small):
        """The nested-loop join's work grows faster than the document."""
        from repro.xmark.queries import Q8
        works = []
        for document in (xmark_tiny, xmark_small):
            core, bindings = compile_with_bindings(
                Q8, {"auction.xml": (document,)})
            evaluator = NaiveEvaluator()
            evaluator.evaluate(core, bindings)
            works.append(evaluator.work)
        size_ratio = xmark_small.size / xmark_tiny.size
        work_ratio = works[1] / works[0]
        assert work_ratio > 1.5 * size_ratio


class TestMemoryAccounting:
    def test_peak_memory_tracked(self):
        core, bindings = compile_with_bindings(
            'for $p in document("d")/site/people/person return $p',
            {"d": parse_forest(SAMPLE)})
        evaluator = NaiveEvaluator()
        evaluator.evaluate(core, bindings)
        assert evaluator.peak_memory > 0

    def test_memory_budget_enforced(self, xmark_tiny):
        from repro.xmark.queries import Q8
        core, bindings = compile_with_bindings(
            Q8, {"auction.xml": (xmark_tiny,)})
        with pytest.raises(MemoryLimitExceeded):
            NaiveEvaluator(memory_budget=10).evaluate(core, bindings)

    def test_generous_budget_succeeds(self, xmark_tiny):
        from repro.xmark.queries import Q13
        core, bindings = compile_with_bindings(
            Q13, {"auction.xml": (xmark_tiny,)})
        result = NaiveEvaluator(memory_budget=10 ** 9).evaluate(core, bindings)
        assert result == evaluate(core, bindings)

    def test_live_memory_released_after_loop(self):
        core, bindings = compile_with_bindings(
            'for $p in document("d")/site/people/person return $p',
            {"d": parse_forest(SAMPLE)})
        evaluator = NaiveEvaluator()
        evaluator.evaluate(core, bindings)
        assert evaluator._live == 0
