"""Query-lifecycle observability: tracing, metrics, and exporters.

One subsystem instruments the whole parse → lower → plan → execute →
serialize lifecycle uniformly across every registered backend:

* :mod:`repro.obs.trace` — nested :class:`Span` trees collected by a
  :class:`Tracer`; a cheap process-wide no-op default when disabled;
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Histogram`
  instruments on a :class:`MetricsRegistry`, fed by the engine, the SQL
  backends, and the session;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``), Prometheus text format (with a validating
  parser), and a human-readable tree renderer;
* :mod:`repro.obs.logs` — console wiring for the ``repro`` stdlib
  logger hierarchy (the CLI's ``--verbose``).

Entry points: ``XQuerySession.run(query, trace=True)`` returns a
:class:`~repro.api.QueryResult` whose ``trace`` is the root span;
``python -m repro … --trace out.json --metrics`` does the same from the
command line.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    PrometheusFormatError,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)
from repro.obs.logs import setup_console_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PrometheusFormatError",
    "Span",
    "Tracer",
    "chrome_trace",
    "get_metrics",
    "get_tracer",
    "parse_prometheus",
    "render_prometheus",
    "render_span_tree",
    "set_metrics",
    "set_tracer",
    "setup_console_logging",
    "use_tracer",
    "write_chrome_trace",
]
