"""The always-on flight recorder: ring buffer, tail sampling, SLO burn.

Every ``session.run`` / ``run_many`` — no flags passed — must land in
the recorder with outcome, timings, and plan-cache facts; anomalous
runs must keep their span tree and emit one structured slow-query log
line; and none of it may change what the caller sees (``trace`` stays
``None``) or cost measurable latency on the hot path.
"""

import json
import logging
import threading
import time

import pytest

from repro.backends.base import ExecutionOptions
from repro.errors import (
    DocumentNotFoundError,
    QueryTimeoutError,
    ResourceBudgetError,
)
from repro.obs.flight import (
    DEFAULT_SLOS,
    SLO,
    AttemptRecord,
    FlightRecorder,
    QueryRecord,
    classify_outcome,
    estimate_quantile,
    query_fingerprint,
    render_percentile_table,
)
from repro.obs.logs import SLOW_QUERY_LOGGER, format_slow_query
from repro.session import XQuerySession
from repro.xmark.queries import FIGURE1_SAMPLE, QUERIES

NAMES = 'document("a.xml")/site/people/person/name/text()'

WIDE_DOC = "<a><a><a><a/></a></a></a>"
#: Five ``//a`` steps overflow the 2**61 interval width budget on the
#: relational backends — the canonical degradable fault.
WIDE_QUERY = 'document("w.xml")' + "//a" * 5


@pytest.fixture
def session():
    with XQuerySession() as active:
        active.add_document("a.xml", FIGURE1_SAMPLE)
        yield active


class TestFingerprint:
    def test_stable_and_short(self):
        first = query_fingerprint(NAMES)
        assert first == query_fingerprint(NAMES)
        assert len(first) == 12

    def test_whitespace_runs_collapse(self):
        assert query_fingerprint("for $x in //a return $x") == \
            query_fingerprint("for $x in //a\n    return   $x  ")

    def test_different_queries_differ(self):
        assert query_fingerprint("a") != query_fingerprint("b")


class TestClassifyOutcome:
    def test_ok_and_degraded(self):
        assert classify_outcome(None) == "ok"
        assert classify_outcome(None, ("skipped sqlite",)) == "degraded"

    def test_error_taxonomy(self):
        assert classify_outcome(QueryTimeoutError(1.0, 2.0)) == "timeout"
        assert classify_outcome(
            ResourceBudgetError("tuples", 1, 2)) == "budget"
        assert classify_outcome(ValueError("boom")) == "error"


class TestSLO:
    def test_error_budget(self):
        slo = SLO("p99-fast", target_seconds=0.1, objective=0.99)
        assert slo.error_budget == pytest.approx(0.01)

    def test_violated_by_latency_and_outcome(self):
        slo = SLO("s", target_seconds=0.1)
        fast = QueryRecord(seq=0, fingerprint="f", query="q", backend="e",
                           winner="e", outcome="ok", error=None,
                           wall_seconds=0.05)
        slow = QueryRecord(seq=1, fingerprint="f", query="q", backend="e",
                           winner="e", outcome="ok", error=None,
                           wall_seconds=0.5)
        failed = QueryRecord(seq=2, fingerprint="f", query="q", backend="e",
                             winner=None, outcome="error", error="ValueError",
                             wall_seconds=0.01)
        assert not slo.violated_by(fast)
        assert slo.violated_by(slow)
        assert slo.violated_by(failed)

    def test_degraded_within_target_does_not_burn(self):
        slo = SLO("s", target_seconds=10.0)
        degraded = QueryRecord(seq=0, fingerprint="f", query="q", backend="s",
                               winner="e", outcome="degraded", error=None,
                               wall_seconds=0.01)
        assert not slo.violated_by(degraded)

    @pytest.mark.parametrize("target,objective", [
        (0.0, 0.99), (-1.0, 0.99), (1.0, 0.0), (1.0, 1.0), (1.0, 1.5),
    ])
    def test_invalid_declarations_rejected(self, target, objective):
        with pytest.raises(ValueError):
            SLO("bad", target_seconds=target, objective=objective)

    def test_default_slo_is_one_second_at_99(self):
        (default,) = DEFAULT_SLOS
        assert default.target_seconds == 1.0
        assert default.objective == 0.99


class TestEstimateQuantile:
    def test_empty_and_zero_count(self):
        assert estimate_quantile([], 0.5) is None
        assert estimate_quantile([(1.0, 0), (float("inf"), 0)], 0.5) is None

    def test_interpolates_inside_bucket(self):
        # 10 observations, all inside (0, 1]: p50 lands mid-bucket.
        cumulative = [(1.0, 10), (float("inf"), 10)]
        assert estimate_quantile(cumulative, 0.5) == pytest.approx(0.5)

    def test_inf_bucket_reports_largest_finite_bound(self):
        cumulative = [(1.0, 0), (float("inf"), 4)]
        assert estimate_quantile(cumulative, 0.99) == 1.0


class TestRingBuffer:
    def _record(self, recorder, seconds=0.001):
        return recorder.record_run(query="q", backend="engine",
                                   wall_seconds=seconds)

    def test_capacity_trims_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for _ in range(10):
            self._record(recorder)
        assert len(recorder) == 4
        assert [r.seq for r in recorder.records()] == [6, 7, 8, 9]
        assert recorder.stats()["recorded_total"] == 10

    def test_sequence_is_monotonic(self):
        recorder = FlightRecorder(capacity=2)
        seqs = [self._record(recorder).seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(slow_seconds=-1.0)

    def test_filters_and_limit(self):
        recorder = FlightRecorder()
        self._record(recorder)
        recorder.record_run(query="bad", backend="engine",
                            error=ValueError("boom"), wall_seconds=0.001)
        errors = recorder.records(outcome="error")
        assert [r.outcome for r in errors] == ["error"]
        assert len(recorder.records(sampled=True)) == 1  # the error
        newest = recorder.records(limit=1)
        assert [r.seq for r in newest] == [1]
        assert recorder.records(limit=0) == []

    def test_reset_clears_counts(self):
        recorder = FlightRecorder()
        self._record(recorder)
        recorder.reset()
        assert len(recorder) == 0
        assert recorder.stats()["recorded_total"] == 0

    def test_snapshot_is_json_serializable(self):
        recorder = FlightRecorder(slow_seconds=0.0)  # sample everything
        self._record(recorder)
        payload = recorder.snapshot()
        assert json.dumps(payload)  # no exotic types leak through
        assert payload[0]["sampled"] is True


class TestEveryRunRecorded:
    def test_plain_run_lands_in_the_buffer(self, session):
        result = session.run(NAMES)
        assert result.trace is None  # telemetry must stay invisible
        (record,) = session.recorder.records()
        assert record.outcome == "ok"
        assert record.backend == "engine"
        assert record.winner == "engine"
        assert record.fingerprint == query_fingerprint(NAMES)
        assert record.wall_seconds > 0
        assert record.trees == 2
        assert not record.sampled and record.trace is None

    def test_phase_timings_without_tracing(self, session):
        session.run(NAMES)
        (record,) = session.recorder.records()
        assert {"compile", "prepare", "execute"} <= set(record.phases)
        assert all(seconds >= 0 for seconds in record.phases.values())

    def test_run_many_records_every_query(self, session):
        session.run_many([NAMES] * 4, max_workers=2)
        records = session.recorder.records()
        assert len(records) == 4
        assert {r.outcome for r in records} == {"ok"}
        assert len({r.seq for r in records}) == 4

    def test_traced_run_still_recorded_and_traced(self, session):
        result = session.run(NAMES, trace=True)
        assert result.trace is not None  # explicit tracing keeps working
        (record,) = session.recorder.records()
        assert record.outcome == "ok"

    def test_plan_cache_hit_and_miss_facts(self, session):
        session.run(NAMES)
        session.run(NAMES)
        first, second = session.recorder.records()
        assert first.plan_cache == "miss"
        assert second.plan_cache == "hit"
        assert first.plan_fingerprint is not None
        assert first.plan_fingerprint == second.plan_fingerprint

    def test_record_false_opts_out(self):
        with XQuerySession(record=False) as active:
            active.add_document("a.xml", FIGURE1_SAMPLE)
            assert active.recorder is None
            result = active.run(NAMES)
            assert result.trace is None

    def test_shared_recorder_across_sessions(self, session):
        shared = session.recorder
        with XQuerySession(recorder=shared) as other:
            other.add_document("a.xml", FIGURE1_SAMPLE)
            other.run(NAMES)
        session.run(NAMES)
        assert len(shared.records()) == 2


class TestOutcomes:
    def test_compile_error_recorded_and_reraised(self, session):
        with pytest.raises(Exception):
            session.run("let $x := ")
        (record,) = session.recorder.records()
        assert record.outcome == "error"
        assert record.error
        assert record.winner is None

    def test_missing_document_recorded(self, session):
        with pytest.raises(DocumentNotFoundError):
            session.run('document("nope.xml")/a')
        (record,) = session.recorder.records()
        assert record.outcome == "error"
        assert record.error == "DocumentNotFoundError"

    def test_timeout_outcome_and_guard_verdict(self, session):
        with pytest.raises(QueryTimeoutError):
            session.run(NAMES, deadline=1e-9)
        (record,) = session.recorder.records()
        assert record.outcome == "timeout"
        assert record.guard_verdict == "timeout"
        assert record.sampled and "error" in record.sample_reasons

    def test_budget_outcome(self, session):
        with pytest.raises(ResourceBudgetError):
            session.run(NAMES, budget=1)
        (record,) = session.recorder.records()
        assert record.outcome == "budget"
        assert record.guard_verdict == "budget"

    def test_guard_verdict_ok_when_guard_passes(self, session):
        session.run(NAMES, budget=10_000)
        (record,) = session.recorder.records()
        assert record.outcome == "ok"
        assert record.guard_verdict == "ok"

    def test_unguarded_run_has_no_verdict(self, session):
        session.run(NAMES)
        (record,) = session.recorder.records()
        assert record.guard_verdict is None


class TestDegradedRuns:
    @pytest.fixture
    def wide(self, session):
        session.add_document("w.xml", WIDE_DOC)
        return session

    def test_degraded_run_tail_sampled_with_attempts(self, wide):
        result = wide.run(WIDE_QUERY, backend="sqlite",
                          fallback=("engine",))
        assert result.degraded
        (record,) = wide.recorder.records()
        assert record.outcome == "degraded"
        assert record.backend == "sqlite"
        assert record.winner == "engine"
        assert record.sampled and "degraded" in record.sample_reasons
        assert record.trace is not None  # anomaly keeps its span tree
        # Both attempts are on the record — the failure included.
        assert [a.backend for a in record.attempts] == ["sqlite", "engine"]
        assert record.attempts[0].error == "WidthOverflowError"
        assert record.attempts[1].error is None

    def test_failed_attempt_lands_in_the_histogram(self, wide):
        wide.run(WIDE_QUERY, backend="sqlite", fallback=("engine",))
        histogram = wide.metrics.get("repro_query_latency_seconds")
        fingerprint = query_fingerprint(WIDE_QUERY)
        # The time burned on the losing backend is priced, not hidden.
        assert histogram.count(fingerprint=fingerprint, backend="sqlite") == 1
        assert histogram.count(fingerprint=fingerprint, backend="engine") == 1

    def test_plain_run_observes_wall_under_winner(self, session):
        session.run(NAMES)
        histogram = session.metrics.get("repro_query_latency_seconds")
        assert histogram.count(fingerprint=query_fingerprint(NAMES),
                               backend="engine") == 1


class TestTailSampling:
    def test_healthy_fast_run_drops_spans(self, session):
        session.run(NAMES)
        (record,) = session.recorder.records()
        assert not record.sampled
        assert record.trace is None
        assert record.sample_reasons == ()

    def test_slow_threshold_samples_and_logs(self, caplog):
        with XQuerySession(slow_seconds=0.0) as active:
            active.add_document("a.xml", FIGURE1_SAMPLE)
            with caplog.at_level(logging.WARNING, logger=SLOW_QUERY_LOGGER):
                active.run(NAMES)
            (record,) = active.recorder.records()
        assert record.sampled and record.sample_reasons == ("slow",)
        assert record.trace is not None
        assert record.trace.find("execute") is not None
        (logged,) = [r for r in caplog.records
                     if r.name == SLOW_QUERY_LOGGER]
        message = logged.getMessage()
        assert f"slow_query={record.fingerprint}" in message
        assert "outcome=ok" in message
        assert "execute_ms=" in message

    def test_slow_log_carries_plan_and_cardinality(self):
        record = QueryRecord(
            seq=7, fingerprint="abc", query="q", backend="engine",
            winner="engine", outcome="ok", error=None, wall_seconds=0.75,
            phases={"execute": 0.7}, plan_cache="hit",
            plan_fingerprint="deadbeef", cardinality_deviation=3.25,
            sampled=True, sample_reasons=("slow",))
        line = format_slow_query(record)
        assert "plan=deadbeef" in line
        assert "plan_cache=hit" in line
        assert "est_vs_obs=3.25" in line

    def test_counters_track_sampling(self, caplog):
        with XQuerySession(slow_seconds=0.0) as active:
            active.add_document("a.xml", FIGURE1_SAMPLE)
            active.run(NAMES)
            sampled = active.metrics.get("repro_flight_tail_sampled_total")
            recorded = active.metrics.get("repro_flight_records_total")
            assert sampled.value(reason="slow") == 1
            assert recorded.value(outcome="ok") == 1


class TestSLOBurn:
    def test_impossible_target_burns_at_full_rate(self):
        slos = (SLO("tight", target_seconds=1e-12, objective=0.5),)
        with XQuerySession(slos=slos) as active:
            active.add_document("a.xml", FIGURE1_SAMPLE)
            active.run(NAMES)
            active.run(NAMES)
            (status,) = active.recorder.slo_status()
            assert status["queries"] == 2
            assert status["violations"] == 2
            # violation fraction 1.0 over a 0.5 budget.
            assert status["burn_rate"] == pytest.approx(2.0)
            gauge = active.metrics.get("repro_slo_burn_rate")
            assert gauge.value(slo="tight") == pytest.approx(2.0)
            counter = active.metrics.get("repro_slo_violations_total")
            assert counter.value(slo="tight") == 2

    def test_met_objective_burns_zero(self, session):
        session.run(NAMES)
        (status,) = session.recorder.slo_status()
        assert status["name"] == "default"
        assert status["violations"] == 0
        assert status["burn_rate"] == 0.0
        gauge = session.metrics.get("repro_slo_target_seconds")
        assert gauge.value(slo="default") == 1.0


class TestPercentiles:
    def test_table_rows_per_series(self, session):
        for _ in range(5):
            session.run(NAMES)
        rows = session.recorder.percentiles()
        (row,) = [r for r in rows
                  if r["fingerprint"] == query_fingerprint(NAMES)]
        assert row["backend"] == "engine"
        assert row["count"] == 5
        for column in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert row[column] is not None and row[column] >= 0
        assert row["query"].startswith("document")

    def test_render_percentile_table(self, session):
        session.run(NAMES)
        text = render_percentile_table(session.recorder.percentiles())
        assert query_fingerprint(NAMES) in text
        assert "p99 ms" in text

    def test_render_empty(self):
        assert render_percentile_table([]) == "no recorded queries"


class TestOverheadAndConcurrency:
    def test_recorder_overhead_is_small(self):
        """The always-on recorder must not slow warm queries measurably.

        The design target is <5% on a warm Q8 (the bench ``telemetry``
        section measures it for real); the assertion allows 50% so
        shared-CI timer noise cannot flake the build — an accidental
        per-operator instrumentation regression costs far more than that.
        """
        with XQuerySession() as active:
            active.add_xmark_document("auction.xml", 0.002)
            query = QUERIES["Q8"]
            compiled = active.prepare(query)
            target = active.backend_instance("engine")
            target.prepare(active._bindings(compiled))
            runner = target.runner(compiled, ExecutionOptions())
            runner()  # warm caches (plan, encodings)

            def best_of(fn, repeats=5):
                timings = []
                for _ in range(repeats):
                    started = time.perf_counter()
                    fn()
                    timings.append(time.perf_counter() - started)
                return min(timings)

            raw = best_of(runner)
            recorded = best_of(lambda: active.run(query))
            assert active.recorder.stats()["recorded_total"] >= 5
            assert recorded <= raw * 1.5 + 0.01

    def test_concurrent_writers_and_readers_never_tear(self, session):
        """run_many hammers the recorder while a reader thread snapshots.

        Every snapshot must decode as JSON with complete records — a torn
        read (half-written record, mid-update counters) shows up as a
        missing field, a None seq, or a raised exception.
        """
        errors: list[BaseException] = []
        stop = threading.Event()

        def read_loop():
            try:
                while not stop.is_set():
                    for payload in session.recorder.snapshot():
                        assert payload["seq"] >= 0
                        assert payload["outcome"] in (
                            "ok", "degraded", "timeout", "budget", "error")
                        assert payload["wall_ms"] >= 0
                    session.recorder.stats()
                    session.recorder.percentiles()
                    json.dumps(session.recorder.snapshot())
            except BaseException as error:  # surfaced after the join
                errors.append(error)

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            session.run_many([NAMES] * 24, max_workers=4)
        finally:
            stop.set()
            reader.join(timeout=10.0)
        assert not errors
        assert session.recorder.stats()["recorded_total"] == 24
        seqs = [record.seq for record in session.recorder.records()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestAttemptRecord:
    def test_to_dict_rounds(self):
        attempt = AttemptRecord("engine", 0.1234567, None)
        assert attempt.to_dict() == {"backend": "engine",
                                     "seconds": 0.123457, "error": None}
