"""Query-lifecycle observability: tracing, metrics, and exporters.

One subsystem instruments the whole parse → lower → plan → execute →
serialize lifecycle uniformly across every registered backend:

* :mod:`repro.obs.trace` — nested :class:`Span` trees collected by a
  :class:`Tracer`; a cheap process-wide no-op default when disabled;
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Histogram`
  instruments on a :class:`MetricsRegistry`, fed by the engine, the SQL
  backends, and the session;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``), Prometheus text format (with a validating
  parser), and a human-readable tree renderer;
* :mod:`repro.obs.logs` — console wiring for the ``repro`` stdlib
  logger hierarchy (the CLI's ``--verbose``) and the structured
  slow-query log on ``repro.slowlog``;
* :mod:`repro.obs.flight` — the always-on :class:`FlightRecorder` ring
  buffer every ``session.run`` reports into, with tail-based trace
  sampling, per-(fingerprint, backend) latency percentiles, and
  :class:`SLO` burn-rate gauges;
* :mod:`repro.obs.serve` — the ``/metrics`` + ``/healthz`` +
  ``/debug/queries`` introspection HTTP server (imported lazily by
  ``session.serve_telemetry`` so plain library use never touches
  ``http.server``).

Entry points: ``XQuerySession.run(query, trace=True)`` returns a
:class:`~repro.api.QueryResult` whose ``trace`` is the root span;
``python -m repro … --trace out.json --metrics`` does the same from the
command line, and ``python -m repro top URL`` renders a live recorder's
percentile table.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    PrometheusFormatError,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)
from repro.obs.flight import (
    DEFAULT_SLOS,
    LATENCY_BUCKETS,
    SLO,
    AttemptRecord,
    FlightRecorder,
    QueryRecord,
    estimate_quantile,
    query_fingerprint,
    render_percentile_table,
)
from repro.obs.logs import (
    format_slow_query,
    log_slow_query,
    setup_console_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "AttemptRecord",
    "Counter",
    "DEFAULT_SLOS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PrometheusFormatError",
    "QueryRecord",
    "SLO",
    "Span",
    "Tracer",
    "chrome_trace",
    "estimate_quantile",
    "format_slow_query",
    "get_metrics",
    "get_tracer",
    "log_slow_query",
    "parse_prometheus",
    "query_fingerprint",
    "render_percentile_table",
    "render_prometheus",
    "render_span_tree",
    "set_metrics",
    "set_tracer",
    "setup_console_logging",
    "use_tracer",
    "write_chrome_trace",
]
