"""Baseline XQuery evaluators standing in for the paper's competitors.

The systems the paper compares against (Galax, Kweelt, IPSI-XQ, QuiP,
X-Hive) are defunct or unobtainable.  What the paper establishes about
them is *behavioural*: all evaluate nested FLWR expressions with
nested-loop strategies and scale quadratically on Q8/Q9, several also
exhausting memory on large documents ("IM").  :mod:`repro.baselines.naive`
reproduces exactly that behaviour class: a direct tree-walking interpreter
of the denotational semantics with per-iteration materialization and an
optional memory budget.
"""

from repro.baselines.naive import (
    MemoryLimitExceeded,
    NaiveEvaluator,
    WorkLimitExceeded,
)

__all__ = ["MemoryLimitExceeded", "NaiveEvaluator", "WorkLimitExceeded"]
