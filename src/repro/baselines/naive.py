"""A nested-loop, materializing XQuery evaluator (the competitor class).

This evaluator executes the Figure 3 semantics directly — every ``for``
iteration re-evaluates its body, every intermediate forest is fully
materialized — which is precisely the strategy the paper attributes to
contemporary XQuery processors and the source of their quadratic scale-up
on Q8/Q9.

Two resource models make the behaviour measurable without wall-clock
dependence and reproduce the failure modes of the paper's tables:

* ``memory_budget`` — total *live* cells (nodes held by environments and
  the forests being accumulated).  Exceeding it raises
  :class:`MemoryLimitExceeded`, the analogue of the paper's "IM" entries
  (systems whose memory demands exceeded the machine).
* ``work_budget`` — total evaluation steps.  Exceeding it raises
  :class:`WorkLimitExceeded`, a deterministic stand-in for the two-hour
  "DNF" timeout.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ReproError, UnboundVariableError
from repro.xml import operations as ops
from repro.xml.forest import Forest, forest_size
from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
)
from repro.xquery.functions import get_function


class MemoryLimitExceeded(ReproError):
    """The evaluator's simulated memory budget was exhausted ("IM")."""


class WorkLimitExceeded(ReproError):
    """The evaluator's work budget was exhausted ("DNF")."""


class NaiveEvaluator:
    """Tree-walking nested-loop evaluation with resource accounting.

    ``memory_budget`` / ``work_budget`` are in cells and steps; ``None``
    disables the corresponding limit.  ``tick`` — optional callback
    invoked once per evaluation step (cooperative deadlines: the session
    passes a :class:`~repro.resilience.guard.QueryGuard` tick here).
    """

    def __init__(self, memory_budget: int | None = None,
                 work_budget: int | None = None,
                 tick=None):
        self.memory_budget = memory_budget
        self.work_budget = work_budget
        self.work = 0
        self.peak_memory = 0
        self._live = 0
        self._tick = tick

    # -- resource accounting -----------------------------------------------------

    def _step(self, amount: int = 1) -> None:
        if self._tick is not None:
            self._tick()
        self.work += amount
        if self.work_budget is not None and self.work > self.work_budget:
            raise WorkLimitExceeded(
                f"work budget of {self.work_budget} steps exhausted"
            )

    def _allocate(self, cells: int) -> None:
        self._live += cells
        if self._live > self.peak_memory:
            self.peak_memory = self._live
        if self.memory_budget is not None and self._live > self.memory_budget:
            raise MemoryLimitExceeded(
                f"memory budget of {self.memory_budget} cells exhausted"
            )

    def _release(self, cells: int) -> None:
        self._live -= cells

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, expr: CoreExpr, env: Mapping[str, Forest]) -> Forest:
        self._step()
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise UnboundVariableError(expr.name) from None
        if isinstance(expr, FnApp):
            spec = get_function(expr.fn)
            args = tuple(self.evaluate(arg, env) for arg in expr.args)
            result = spec.impl(args, dict(expr.params))
            self._step(max(1, forest_size(result)))
            return result
        if isinstance(expr, Let):
            bound = self.evaluate(expr.value, env)
            cells = forest_size(bound)
            self._allocate(cells)
            try:
                extended = dict(env)
                extended[expr.var] = bound
                return self.evaluate(expr.body, extended)
            finally:
                self._release(cells)
        if isinstance(expr, Where):
            if self.evaluate_condition(expr.condition, env):
                return self.evaluate(expr.body, env)
            return ()
        if isinstance(expr, For):
            return self._evaluate_for(expr, env)
        raise TypeError(f"unknown expression type: {type(expr).__name__}")

    def _evaluate_for(self, expr: For, env: Mapping[str, Forest]) -> Forest:
        source = self.evaluate(expr.source, env)
        extended = dict(env)
        pieces: list[Forest] = []
        accumulated = 0
        try:
            for tree in source:
                self._step()
                extended[expr.var] = (tree,)
                piece = self.evaluate(expr.body, extended)
                cells = forest_size(piece)
                self._allocate(cells)
                accumulated += cells
                pieces.append(piece)
            return tuple(node for piece in pieces for node in piece)
        finally:
            self._release(accumulated)

    def evaluate_condition(self, condition: Condition,
                           env: Mapping[str, Forest]) -> bool:
        self._step()
        if isinstance(condition, Equal):
            left = self.evaluate(condition.left, env)
            right = self.evaluate(condition.right, env)
            self._step(forest_size(left) + forest_size(right))
            return ops.equal(left, right)
        if isinstance(condition, SomeEqual):
            left = self.evaluate(condition.left, env)
            right = self.evaluate(condition.right, env)
            self._step(forest_size(left) + forest_size(right))
            right_set = set(right)
            return any(tree in right_set for tree in left)
        if isinstance(condition, Less):
            left = self.evaluate(condition.left, env)
            right = self.evaluate(condition.right, env)
            self._step(forest_size(left) + forest_size(right))
            return ops.less(left, right)
        if isinstance(condition, Empty):
            return ops.empty(self.evaluate(condition.expr, env))
        if isinstance(condition, Not):
            return not self.evaluate_condition(condition.condition, env)
        if isinstance(condition, And):
            return (self.evaluate_condition(condition.left, env)
                    and self.evaluate_condition(condition.right, env))
        if isinstance(condition, Or):
            return (self.evaluate_condition(condition.left, env)
                    or self.evaluate_condition(condition.right, env))
        raise TypeError(f"unknown condition type: {type(condition).__name__}")
