"""Tests for the observability primitives: spans, metrics, exporters."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    PrometheusFormatError,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class FakeClock:
    """A deterministic clock: every read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent is outer
        assert outer.children == [inner]
        assert tracer.roots == [outer]

    def test_durations_are_monotonic(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.seconds > inner.seconds > 0

    def test_attributes_at_open_and_set(self):
        tracer = Tracer()
        with tracer.span("s", backend="engine") as span:
            span.set(tuples=3)
        assert span.attributes == {"backend": "engine", "tuples": 3}

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError"
        assert span.end is not None
        assert tracer.current is None

    def test_explicit_parent_bypasses_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        # Root is closed; a serialize-style span still attaches under it.
        with tracer.span("late", parent=root) as late:
            pass
        assert late.parent is root
        assert late in root.children
        assert tracer.roots == [root]

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_record_span_grafts_sequentially(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent") as parent:
            pass
        first = tracer.record_span("one", 2.0, parent=parent)
        second = tracer.record_span("two", 3.0, parent=parent)
        assert first.start == parent.start
        assert second.start == first.end
        assert second.seconds == pytest.approx(3.0)
        assert [c.name for c in parent.children] == ["one", "two"]

    def test_record_span_under_active_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("open") as outer:
            recorded = tracer.record_span("cached", 1.5)
        assert recorded.parent is outer


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        tracer = NullTracer()
        assert tracer.span("anything", key="value") is NULL_SPAN
        assert tracer.record_span("x", 1.0) is NULL_SPAN
        assert not tracer.enabled

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(a=1) is NULL_SPAN
        assert NULL_SPAN.seconds == 0.0
        assert list(NULL_SPAN.walk()) == []

    def test_process_default_management(self):
        assert get_tracer() is NULL_TRACER
        mine = Tracer()
        try:
            previous = set_tracer(mine)
            assert previous is NULL_TRACER
            assert get_tracer() is mine
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        mine = Tracer()
        with use_tracer(mine) as active:
            assert active is mine
            assert get_tracer() is mine
        assert get_tracer() is NULL_TRACER


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests_total", label_names=("backend",))
        counter.inc(backend="engine")
        counter.inc(2, backend="engine")
        counter.inc(backend="sqlite")
        assert counter.value(backend="engine") == 3
        assert counter.value(backend="sqlite") == 1
        assert counter.value(backend="naive") == 0

    def test_negative_increment_rejected(self):
        counter = Counter("ops_total")
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = Counter("x_total", label_names=("a",))
        with pytest.raises(ReproError, match="expects labels"):
            counter.inc(b="nope")
        with pytest.raises(ReproError, match="expects labels"):
            counter.inc()


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("widths", buckets=(1, 4, 16))
        for value in (0.5, 2, 3, 100):
            histogram.observe(value)
        pairs = histogram.bucket_counts()
        assert pairs == [(1, 1), (4, 3), (16, 3), (float("inf"), 4)]
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(105.5)

    def test_labelled_series_are_independent(self):
        histogram = Histogram("sizes", label_names=("op",), buckets=(10,))
        histogram.observe(5, op="for")
        histogram.observe(50, op="join")
        assert histogram.count(op="for") == 1
        assert histogram.count(op="join") == 1
        assert histogram.bucket_counts(op="join")[0] == (10, 0)

    def test_unsorted_bounds_are_sorted_and_deduped(self):
        histogram = Histogram("widths", buckets=(16, 1, 4, 4))
        assert histogram.buckets == (1.0, 4.0, 16.0)
        histogram.observe(2)
        assert histogram.bucket_counts() == [
            (1.0, 0), (4.0, 1), (16.0, 1), (float("inf"), 1)]

    def test_non_finite_bounds_stripped(self):
        histogram = Histogram("widths",
                              buckets=(1, float("inf"), float("nan"), 4))
        assert histogram.buckets == (1.0, 4.0)

    def test_no_finite_bound_rejected(self):
        with pytest.raises(ReproError, match="finite"):
            Histogram("widths", buckets=(float("inf"),))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "desc")
        second = registry.counter("a_total", "desc")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ReproError, match="counter"):
            registry.histogram("thing")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", label_names=("a",))
        with pytest.raises(ReproError, match="declared with labels"):
            registry.counter("thing", label_names=("b",))

    def test_reset_keeps_declarations(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        counter.inc()
        registry.reset()
        assert "n_total" in registry
        assert counter.value() == 0

    def test_process_default_management(self):
        default = get_metrics()
        mine = MetricsRegistry()
        try:
            assert set_metrics(mine) is default
            assert get_metrics() is mine
        finally:
            set_metrics(default)


class TestChromeTrace:
    def _trace(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query", backend="engine"):
            with tracer.span("execute"):
                pass
        return tracer.roots[0]

    def test_complete_events_with_microseconds(self):
        document = chrome_trace(self._trace())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["query", "execute"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
        assert events[0]["args"] == {"backend": "engine"}

    def test_events_sorted_by_timestamp(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        events = chrome_trace(tracer.roots)["traceEvents"]
        assert [e["name"] for e in events] == ["first", "second"]
        assert events[0]["ts"] <= events[1]["ts"]

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._trace(), str(path))
        loaded = json.loads(path.read_text())
        assert {e["name"] for e in loaded["traceEvents"]} == \
            {"query", "execute"}

    def test_non_json_attributes_stringified(self):
        tracer = Tracer()
        with tracer.span("s", strategy=object()) as span:
            pass
        (event,) = chrome_trace(span)["traceEvents"]
        assert isinstance(event["args"]["strategy"], str)


class TestSpanTreeRenderer:
    def test_renders_names_durations_attributes(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query", backend="engine"):
            with tracer.span("execute"):
                pass
        text = render_span_tree(tracer.roots[0])
        assert "query" in text and "execute" in text
        assert "backend=engine" in text
        assert "ms" in text

    def test_min_seconds_prunes_children_not_root(self):
        tracer = Tracer(clock=FakeClock(step=0.001))
        with tracer.span("root"):
            with tracer.span("tiny"):
                pass
        text = render_span_tree(tracer.roots[0], min_seconds=10.0)
        assert "root" in text
        assert "tiny" not in text


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_queries_total", "queries run", ("backend",))
        counter.inc(3, backend="engine")
        counter.inc(1, backend="sqlite")
        histogram = registry.histogram(
            "repro_widths", "interval widths", buckets=(1, 4))
        histogram.observe(2)
        histogram.observe(9)
        return registry

    def test_render_includes_type_and_samples(self):
        text = render_prometheus(self._registry())
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{backend="engine"} 3' in text
        assert "# TYPE repro_widths histogram" in text
        assert 'repro_widths_bucket{le="+Inf"} 2' in text
        assert "repro_widths_count 2" in text

    def test_round_trip_through_validator(self):
        samples = parse_prometheus(render_prometheus(self._registry()))
        assert samples['repro_queries_total{backend="engine"}'] == 3
        assert samples['repro_widths_bucket{le="4"}'] == 1
        assert samples["repro_widths_sum"] == 11

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", label_names=("q",)).inc(q='a"b\\c')
        samples = parse_prometheus(render_prometheus(registry))
        (key,) = samples
        assert key.startswith("c_total{")

    def test_missing_type_rejected(self):
        with pytest.raises(PrometheusFormatError, match="TYPE"):
            parse_prometheus("some_metric 1\n")

    def test_malformed_sample_rejected(self):
        text = "# TYPE a counter\na{unclosed 1\n"
        with pytest.raises(PrometheusFormatError):
            parse_prometheus(text)

    def test_bad_value_rejected(self):
        text = "# TYPE a counter\na notanumber\n"
        with pytest.raises(PrometheusFormatError, match="bad value"):
            parse_prometheus(text)

    def test_duplicate_sample_rejected(self):
        text = "# TYPE a counter\na 1\na 2\n"
        with pytest.raises(PrometheusFormatError, match="duplicate"):
            parse_prometheus(text)

    def test_non_cumulative_histogram_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_count 2\n")
        with pytest.raises(PrometheusFormatError, match="cumulative"):
            parse_prometheus(text)

    def test_missing_inf_bucket_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_count 1\n")
        with pytest.raises(PrometheusFormatError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_count_disagreement_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_count 7\n")
        with pytest.raises(PrometheusFormatError, match="disagrees"):
            parse_prometheus(text)

    def test_unordered_bucket_bounds_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.5"} 1\n'
                'h_bucket{le="0.1"} 1\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 1\nh_count 2\n")
        with pytest.raises(PrometheusFormatError, match="ascending"):
            parse_prometheus(text)

    def test_missing_count_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 2\n'
                "h_sum 1\n")
        with pytest.raises(PrometheusFormatError, match="missing _count"):
            parse_prometheus(text)

    def test_missing_sum_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 2\n'
                "h_count 2\n")
        with pytest.raises(PrometheusFormatError, match="missing _sum"):
            parse_prometheus(text)
