"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.xmark.queries import FIGURE1_SAMPLE


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "auction.xml"
    path.write_text(FIGURE1_SAMPLE)
    return str(path)


QUERY = 'document("a.xml")/site/people/person/name/text()'


class TestRun:
    def test_engine_run(self, sample_file, capsys):
        code = main([QUERY, "--doc", f"a.xml={sample_file}"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "Jaak TempestiCong Rosca"

    @pytest.mark.parametrize("backend", ["interpreter", "sqlite"])
    def test_other_backends(self, sample_file, capsys, backend):
        code = main([QUERY, "--doc", f"a.xml={sample_file}",
                     "--backend", backend])
        assert code == 0
        assert "Jaak Tempesti" in capsys.readouterr().out

    def test_query_from_file(self, sample_file, tmp_path, capsys):
        query_path = tmp_path / "q.xq"
        query_path.write_text(QUERY)
        code = main([f"@{query_path}", "--doc", f"a.xml={sample_file}"])
        assert code == 0
        assert "Cong Rosca" in capsys.readouterr().out

    def test_indent(self, sample_file, capsys):
        code = main(['document("a.xml")/site/people/person[1]',
                     "--doc", f"a.xml={sample_file}", "--indent", "2"])
        assert code == 0
        assert "\n  " in capsys.readouterr().out


class TestIntrospection:
    def test_explain(self, capsys):
        code = main([QUERY, "--explain"])
        assert code == 0
        assert "Fn:select" in capsys.readouterr().out

    def test_explain_nlj(self, capsys):
        from repro.xmark.queries import Q8
        code = main([Q8, "--explain", "--strategy", "nlj"])
        assert code == 0
        assert "nested-loop" in capsys.readouterr().out

    def test_sql(self, sample_file, capsys):
        code = main([QUERY, "--doc", f"a.xml={sample_file}", "--sql"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("WITH ")
        assert "ORDER BY l" in out


class TestObservability:
    def test_trace_writes_chrome_json(self, sample_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main([QUERY, "--doc", f"a.xml={sample_file}",
                     "--trace", str(trace_path)])
        assert code == 0
        document = json.loads(trace_path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert {"query", "compile", "prepare", "execute",
                "serialize"} <= names
        assert f"trace written to {trace_path}" in capsys.readouterr().err

    def test_metrics_dumps_valid_prometheus(self, sample_file, capsys):
        from repro.obs.export import parse_prometheus

        code = main([QUERY, "--doc", f"a.xml={sample_file}", "--metrics"])
        assert code == 0
        err = capsys.readouterr().err
        samples = parse_prometheus(err)
        assert any(key.startswith("repro_session_queries_total")
                   for key in samples)

    def test_verbose_logs_to_stderr(self, sample_file, capsys):
        code = main([QUERY, "--doc", f"a.xml={sample_file}", "--verbose"])
        assert code == 0
        captured = capsys.readouterr()
        assert "repro.session" in captured.err
        assert "Jaak Tempesti" in captured.out

    def test_result_unchanged_when_traced(self, sample_file, tmp_path,
                                          capsys):
        code = main([QUERY, "--doc", f"a.xml={sample_file}",
                     "--trace", str(tmp_path / "t.json"),
                     "--backend", "sqlite"])
        assert code == 0
        assert "Jaak TempestiCong Rosca" in capsys.readouterr().out

    def test_serve_telemetry_announces_url(self, sample_file, capsys):
        code = main([QUERY, "--doc", f"a.xml={sample_file}",
                     "--serve-telemetry", "0"])
        assert code == 0
        captured = capsys.readouterr()
        assert "telemetry serving on http://127.0.0.1:" in captured.err
        assert "Jaak Tempesti" in captured.out

    def test_serve_telemetry_endpoint_answers_during_linger(
            self, sample_file, capsys, monkeypatch):
        """While the CLI lingers, /debug/queries shows the batch it ran."""
        import re
        import time as time_module
        from repro.obs.serve import fetch_json

        seen: dict[str, object] = {}

        def scrape_instead_of_sleeping(seconds: float) -> None:
            url = re.search(r"telemetry serving on (\S+)",
                            capsys.readouterr().err).group(1)
            seen.update(fetch_json(url + "/debug/queries?traces=false"))

        monkeypatch.setattr(time_module, "sleep",
                            scrape_instead_of_sleeping)
        code = main([QUERY, QUERY, "--doc", f"a.xml={sample_file}",
                     "--serve-telemetry", "0", "--serve-linger", "5"])
        assert code == 0
        assert seen["stats"]["recorded_total"] == 2

    def test_top_without_server_exits_1(self, capsys):
        code = main(["top", "127.0.0.1:9"])  # discard port: refused
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestErrors:
    def test_missing_document(self, capsys):
        code = main([QUERY])
        assert code == 1
        assert "a.xml" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main([QUERY, "--doc", "a.xml=/does/not/exist.xml"])
        assert code == 1

    def test_syntax_error(self, capsys):
        code = main(["for $x in"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_doc_argument(self, capsys):
        with pytest.raises(SystemExit):
            main([QUERY, "--doc", "no-equals-sign"])

    def test_sql_requires_doc_binding(self, capsys):
        code = main([QUERY, "--sql"])
        assert code == 1
        assert "missing --doc binding" in capsys.readouterr().err
