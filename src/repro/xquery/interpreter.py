"""Denotational reference interpreter for the core language (Figure 3).

    [[x]]E                      = E(x)
    [[XFn(e1,…,ek)]]E           = XFn([[e1]]E, …, [[ek]]E)
    [[let x = e in e']]E        = [[e']] E[x := [[e]]E]
    [[where φ return e]]E       = [[e]]E  if [[φ]]E else []
    [[for x in e do e']]E       = [[e']]E[x:=v1] @ … @ [[e']]E[x:=vk]
                                   where [v1,…,vk] = [[e]]E

This interpreter is the semantic oracle: it is deliberately simple (a
direct transcription of the semantic equations, nested-loop iteration,
no rewriting) and every other evaluator in the package is tested against
it.  It is also the engine behind :mod:`repro.baselines.naive`, which
models the behaviour the paper attributes to contemporary XQuery
processors.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import UnboundVariableError
from repro.xml import operations as ops
from repro.xml.forest import Forest
from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
)
from repro.xquery.functions import get_function

Environment = Mapping[str, Forest]


class Interpreter:
    """Evaluate core expressions under an environment.

    ``tick`` — an optional callback invoked once per iteration step and
    function application; the benchmark harness uses it for cooperative
    timeouts and work accounting.
    """

    def __init__(self, tick: Callable[[], None] | None = None):
        self._tick = tick

    def evaluate(self, expr: CoreExpr, env: Environment) -> Forest:
        """Compute ``[[expr]]env``."""
        if self._tick is not None:
            self._tick()
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise UnboundVariableError(expr.name) from None
        if isinstance(expr, FnApp):
            spec = get_function(expr.fn)
            args = tuple(self.evaluate(arg, env) for arg in expr.args)
            return spec.impl(args, dict(expr.params))
        if isinstance(expr, Let):
            bound = self.evaluate(expr.value, env)
            extended = dict(env)
            extended[expr.var] = bound
            return self.evaluate(expr.body, extended)
        if isinstance(expr, Where):
            if self.evaluate_condition(expr.condition, env):
                return self.evaluate(expr.body, env)
            return ()
        if isinstance(expr, For):
            source = self.evaluate(expr.source, env)
            pieces: list[Forest] = []
            extended = dict(env)
            for tree in source:
                if self._tick is not None:
                    self._tick()
                extended[expr.var] = (tree,)
                pieces.append(self.evaluate(expr.body, extended))
            return tuple(node for piece in pieces for node in piece)
        raise TypeError(f"unknown expression type: {type(expr).__name__}")

    def evaluate_condition(self, condition: Condition, env: Environment) -> bool:
        """Compute the truth value of φ under ``env``."""
        if isinstance(condition, Equal):
            return ops.equal(
                self.evaluate(condition.left, env),
                self.evaluate(condition.right, env),
            )
        if isinstance(condition, SomeEqual):
            left = self.evaluate(condition.left, env)
            right = self.evaluate(condition.right, env)
            right_set = set(right)
            return any(tree in right_set for tree in left)
        if isinstance(condition, Less):
            return ops.less(
                self.evaluate(condition.left, env),
                self.evaluate(condition.right, env),
            )
        if isinstance(condition, Empty):
            return ops.empty(self.evaluate(condition.expr, env))
        if isinstance(condition, Not):
            return not self.evaluate_condition(condition.condition, env)
        if isinstance(condition, And):
            return self.evaluate_condition(condition.left, env) and \
                self.evaluate_condition(condition.right, env)
        if isinstance(condition, Or):
            return self.evaluate_condition(condition.left, env) or \
                self.evaluate_condition(condition.right, env)
        raise TypeError(f"unknown condition type: {type(condition).__name__}")


def evaluate(expr: CoreExpr, env: Environment | None = None,
             tick: Callable[[], None] | None = None) -> Forest:
    """Convenience wrapper: evaluate ``expr`` under ``env`` (default empty)."""
    return Interpreter(tick).evaluate(expr, dict(env or {}))


def evaluate_condition(condition: Condition, env: Environment | None = None) -> bool:
    """Convenience wrapper for condition evaluation."""
    return Interpreter().evaluate_condition(condition, dict(env or {}))
