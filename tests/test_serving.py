"""The asyncio HTTP query front-end (:mod:`repro.serving`).

A real ``asyncio.start_server`` on an ephemeral port, driven with raw
HTTP/1.1 over ``asyncio.open_connection`` — stdlib only, no test-client
shims, exactly the bytes a load balancer would send.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serving import QueryServer, serve_until_stopped
from repro.session import XQuerySession
from repro.xmark.queries import FIGURE1_SAMPLE

NAMES = 'document("a.xml")/site/people/person/name/text()'


def http(server: QueryServer, method: str, path: str,
         body: bytes = b"") -> tuple[int, dict[str, str], bytes]:
    """One raw HTTP exchange against a running server."""

    async def exchange():
        reader, writer = await asyncio.open_connection(
            server.host, server.port)
        request = (f"{method} {path} HTTP/1.1\r\n"
                   f"Host: {server.host}\r\n"
                   f"Content-Length: {len(body)}\r\n"
                   f"\r\n").encode("ascii") + body
        writer.write(request)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, payload = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, payload

    return exchange()


def run(server: QueryServer, *exchanges):
    """Start the server, run the exchanges, stop it — one event loop."""

    async def session():
        await server.start()
        try:
            return [await exchange for exchange in exchanges]
        finally:
            await server.stop()

    return asyncio.run(session())


@pytest.fixture
def session():
    with XQuerySession() as active:
        active.add_document("a.xml", FIGURE1_SAMPLE)
        yield active


@pytest.fixture
def server(session):
    return QueryServer(session, port=0)


class TestQueryEndpoint:
    def test_plain_text_query_returns_xml(self, session, server):
        ((status, headers, body),) = run(
            server, http(server, "POST", "/query", NAMES.encode()))
        assert status == 200
        assert headers["content-type"].startswith("application/xml")
        assert headers["x-backend"] == "engine"
        assert body == session.run(NAMES).to_xml().encode()

    def test_json_body_selects_knobs(self, server):
        payload = json.dumps({"query": NAMES, "strategy": "nlj",
                              "deadline": 30.0}).encode()
        ((status, _headers, body),) = run(
            server, http(server, "POST", "/query", payload))
        assert status == 200
        assert b"Jaak" in body

    def test_bad_query_maps_to_400(self, server):
        ((status, _headers, body),) = run(
            server, http(server, "POST", "/query", b"let $x := "))
        assert status == 400
        assert json.loads(body)["error"]

    def test_empty_body_maps_to_400(self, server):
        ((status, _headers, body),) = run(
            server, http(server, "POST", "/query"))
        assert status == 400
        assert json.loads(body)["error"] == "empty query"

    def test_get_query_maps_to_405(self, server):
        ((status, _headers, _body),) = run(
            server, http(server, "GET", "/query"))
        assert status == 405

    def test_overload_maps_to_503_with_retry_after(self, session, server):
        session.admission.begin_drain()
        try:
            ((status, headers, body),) = run(
                server, http(server, "POST", "/query", NAMES.encode()))
        finally:
            session.admission.end_drain()
        assert status == 503
        assert int(headers["retry-after"]) >= 1
        assert json.loads(body)["error"] == "overloaded"

    def test_requests_interleave_on_one_loop(self, server):
        results = run(server, *[
            http(server, "POST", "/query", NAMES.encode())
            for _ in range(8)
        ])
        assert [status for status, _h, _b in results] == [200] * 8


class TestOtherEndpoints:
    def test_index_lists_endpoints(self, server):
        ((status, _headers, body),) = run(server, http(server, "GET", "/"))
        assert status == 200
        assert json.loads(body)["endpoints"] == ["/query", "/healthz"]

    def test_unknown_path_404s(self, server):
        ((status, _headers, body),) = run(
            server, http(server, "GET", "/nope"))
        assert status == 404
        assert "unknown path" in json.loads(body)["error"]

    def test_healthz_healthy(self, server):
        ((status, headers, body),) = run(
            server, http(server, "GET", "/healthz"))
        assert status == 200
        assert "retry-after" not in headers
        assert json.loads(body)["status"] == "ok"

    def test_healthz_shedding_carries_retry_after(self, session, server):
        session.admission.begin_drain()
        try:
            ((status, headers, body),) = run(
                server, http(server, "GET", "/healthz"))
        finally:
            session.admission.end_drain()
        assert status == 503
        assert int(headers["retry-after"]) >= 1
        assert json.loads(body)["status"] == "shedding"

    def test_malformed_request_line_400s(self, server):
        async def garbage():
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        (raw,) = run(server, garbage())
        assert b"400" in raw.split(b"\r\n", 1)[0]


class TestLifecycle:
    def test_ephemeral_port_and_url(self, server):
        async def check():
            await server.start()
            try:
                assert server.port > 0
                assert server.url == f"http://127.0.0.1:{server.port}"
            finally:
                await server.stop()

        asyncio.run(check())

    def test_stop_is_idempotent(self, server):
        async def check():
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(check())

    def test_serve_until_stopped(self, server):
        async def check():
            stop = asyncio.Event()
            task = asyncio.create_task(serve_until_stopped(server, stop))
            await asyncio.sleep(0.05)
            status, _headers, _body = await http(server, "GET", "/healthz")
            assert status == 200
            stop.set()
            await asyncio.wait_for(task, timeout=5)

        asyncio.run(check())

    def test_server_backend_default_applies(self, session, server):
        server.backend = "naive"
        ((_status, headers, _body),) = run(
            server, http(server, "POST", "/query", NAMES.encode()))
        assert headers["x-backend"] == "naive"
