"""Backend adapter for the Section 4 translation executed on SQLite."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.backends.base import Backend, BackendCapabilities, ExecutionOptions
from repro.backends.registry import register_backend
from repro.concurrency import ThreadLocalPool
from repro.sql.sqlite_backend import SQLITE_MAX_WIDTH, SQLiteDatabase
from repro.xml.forest import Forest

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import CompiledQuery


class _ThreadDatabase:
    """One worker thread's database plus what it has materialized.

    ``loaded`` maps document name → the backend generation shredded into
    this database; comparing it against the backend's current generation
    map tells a thread exactly which documents it must (re)load.
    """

    __slots__ = ("database", "loaded")

    def __init__(self, database: SQLiteDatabase):
        self.database = database
        self.loaded: dict[str, int] = {}

    def close(self) -> None:
        self.database.close()


@register_backend
class SQLiteBackend(Backend):
    """Run the single-statement SQL translation on a stock SQLite engine.

    Thread safety hinges on where the shredded tables live:

    * ``:memory:`` (the default) — in-memory SQLite databases are
      **per connection**, so the backend keeps one
      :class:`~repro.sql.sqlite_backend.SQLiteDatabase` per worker thread
      (lazily, via :class:`~repro.concurrency.ThreadLocalPool`).  Every
      ``prepare``/``invalidate`` bumps a monotonic per-document
      generation; each thread re-shreds exactly the documents whose
      generation it has not materialized yet, so all threads observe a
      consistent snapshot without sharing a connection.
    * a file path — the tables are shared on disk, so all threads share
      one database and executions serialize on an internal lock (the
      stdlib driver does not support concurrent statements on one
      connection).

    :meth:`~Backend.close` closes every thread's connection in one
    idempotent sweep, from whatever thread calls it.
    """

    name = "sqlite"
    capabilities = BackendCapabilities(
        prepared_documents=True,
        updates=True,
        max_width=SQLITE_MAX_WIDTH,  # 64-bit integers, Section 4.3
        strategies=(),  # join choice belongs to SQLite's own planner
        description="Section 4 single-SQL-statement translation on SQLite",
    )

    def __init__(self, path: str = ":memory:", mode: str = "staged") -> None:
        super().__init__()
        self._path = path
        self._mode = mode
        #: name → (generation, forest); generations are globally monotonic
        #: so per-thread databases know exactly what is stale.
        self._generations: dict[str, tuple[int, Forest]] = {}
        self._next_generation = 0
        self._pool: ThreadLocalPool[_ThreadDatabase] = ThreadLocalPool(
            lambda: _ThreadDatabase(SQLiteDatabase(self._path)))
        # File-backed databases share tables between connections, so all
        # threads use one database and serialize on this lock.
        self._serial = threading.RLock() if path != ":memory:" else None
        self._shared: _ThreadDatabase | None = None

    # -- per-thread database management ----------------------------------------

    @property
    def database(self) -> SQLiteDatabase:
        """The calling thread's database, synced to the current documents."""
        return self._thread_database().database

    def _thread_database(self) -> _ThreadDatabase:
        if self._serial is not None:
            with self._serial:
                if self._shared is None:
                    self._check_open()
                    self._shared = _ThreadDatabase(SQLiteDatabase(self._path))
                state = self._shared
                self._sync(state)
                return state
        state = self._pool.get()
        self._sync(state)
        return state

    def _sync(self, state: _ThreadDatabase) -> None:
        """Shred into ``state`` every document it has not materialized yet."""
        with self._lock:
            pending = [(name, generation, forest)
                       for name, (generation, forest)
                       in self._generations.items()
                       if state.loaded.get(name) != generation]
        for name, generation, forest in pending:
            state.database.load_document(name, forest)
            state.loaded[name] = generation

    def _load(self, name: str, forest: Forest) -> None:
        # Called under the backend lock (base.prepare).  Bump the
        # generation, then shred eagerly for the calling thread so
        # prepare stays the untimed phase (benchmark methodology).
        self._next_generation += 1
        self._generations[name] = (self._next_generation, forest)
        self._thread_database()

    def _unload(self, name: str) -> None:
        # Dropping the generation is enough: per-thread tables for the
        # old contents are replaced wholesale by the next load's sync.
        self._generations.pop(name, None)

    def _close(self) -> None:
        if self._serial is not None:
            with self._serial:
                if self._shared is not None:
                    self._shared.close()
                    self._shared = None
        self._pool.close_all()

    # -- execution --------------------------------------------------------------

    def _runner(self, compiled: "CompiledQuery",
                options: ExecutionOptions) -> Callable[[], Forest]:
        self._bindings(compiled)  # uniform missing-document error
        state = self._thread_database()
        database = state.database
        translation = database.translate(compiled.core)
        mode = self._mode
        serial = self._serial
        # self._tracer is read at call time, not build time, so a runner
        # built once can be driven both traced and untraced.
        if serial is None:
            return lambda: database.run_translation(
                translation, mode=mode,
                tracer=self._tracer, metrics=options.metrics,
                guard=options.guard)

        def run() -> Forest:
            with serial:
                return database.run_translation(
                    translation, mode=mode,
                    tracer=self._tracer, metrics=options.metrics,
                    guard=options.guard)

        return run
