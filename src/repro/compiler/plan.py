"""Physical plan nodes executed by the DI engine.

The plan mirrors the core AST one-to-one except for iteration:

* :class:`ForNode` is the naive dynamic-interval expansion — every
  environment of the current sequence is split per tree of the source, and
  every outer variable the body needs is **copied per new environment**.
  When the source depends on the sequence being expanded this is the
  nested-loop strategy (DI-NLJ), with its quadratic data blow-up.

* :class:`JoinForNode` is the Section 5 decorrelated form: the source is
  evaluated once against the *base* environment, join keys are computed on
  both sides, environments are matched by a structural merge join, and only
  the matching pairs are materialized (DI-MSJ).

Plan nodes precompute ``required_outer`` — the outer variables the body
actually references — so expansion copies no more data than necessary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class JoinStrategy(enum.Enum):
    """Join execution strategy for nested FLWR loops."""

    NLJ = "nlj"  #: nested-loop: naive environment expansion
    MSJ = "msj"  #: merge-sort join on structural keys (Section 5)


class PlanNode:
    """Base class of physical plan nodes."""

    __slots__ = ()


class CondPlan:
    """Base class of condition plan nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VarNode(PlanNode):
    name: str


@dataclass(frozen=True, slots=True)
class FnNode(PlanNode):
    fn: str
    args: tuple[PlanNode, ...] = ()
    params: tuple[tuple[str, str], ...] = ()

    def param(self, key: str) -> str:
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(key)


@dataclass(frozen=True, slots=True)
class LetNode(PlanNode):
    var: str
    value: PlanNode
    body: PlanNode


@dataclass(frozen=True, slots=True)
class WhereNode(PlanNode):
    condition: CondPlan
    body: PlanNode
    #: Free variables of the body — only these survive the index filter.
    body_free: frozenset[str] = frozenset()


@dataclass(frozen=True, slots=True)
class ForNode(PlanNode):
    """Naive iteration: expand environments per source tree."""

    var: str
    source: PlanNode
    body: PlanNode
    #: Outer variables to copy into the expanded sequence.
    required_outer: frozenset[str] = frozenset()


@dataclass(frozen=True, slots=True)
class JoinForNode(PlanNode):
    """Decorrelated iteration executed as an environment join.

    Semantics are identical to
    ``ForNode(var, source, WhereNode(SomeEqual(key_outer, key_inner) ∧
    residual, body))`` — but ``source`` and ``key_inner`` are evaluated
    against the base environment (they are provably independent of every
    enclosing iteration variable), and only key-matching environment pairs
    are materialized.

    ``strategy`` selects the *pair-matching operator* — the paper's Q8
    experiment uses two plans "whose only difference was that where one
    plan used a nested-loop join operator, the other used a merge-sort
    join":

    * :attr:`JoinStrategy.MSJ` — sort both key lists by structural order,
      merge in one pass (near-linear);
    * :attr:`JoinStrategy.NLJ` — compare every (outer, inner) key pair
      (quadratic in the number of environments).
    """

    var: str
    source: PlanNode       # evaluated on the base environment
    key_outer: PlanNode    # evaluated on the current sequence
    key_inner: PlanNode    # evaluated on the source expansion of the base env
    body: PlanNode
    residual: CondPlan | None = None
    required_outer: frozenset[str] = frozenset()
    #: True when the key conjunct was SomeEqual (match any tree pair);
    #: False for Equal (match whole forests).
    existential: bool = True
    #: The pair-matching operator (see class docstring).
    strategy: JoinStrategy = JoinStrategy.MSJ
    #: A residual conjunction over the join variable alone, applied to the
    #: inner expansion *before* pair matching (select pushdown below the
    #: join).  Filtered inner environments simply never pair.
    inner_filter: CondPlan | None = None
    #: Join-graph isolation (Grust et al.): evaluate the body once per
    #: inner environment and gather the finished blocks into the matched
    #: pairs.  Only valid when the body reads no variable but ``var``.
    isolate: bool = False


# -- condition plan nodes -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EmptyCond(CondPlan):
    expr: PlanNode


@dataclass(frozen=True, slots=True)
class EqualCond(CondPlan):
    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, slots=True)
class SomeEqualCond(CondPlan):
    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, slots=True)
class LessCond(CondPlan):
    left: PlanNode
    right: PlanNode


@dataclass(frozen=True, slots=True)
class NotCond(CondPlan):
    condition: CondPlan


@dataclass(frozen=True, slots=True)
class AndCond(CondPlan):
    left: CondPlan
    right: CondPlan


@dataclass(frozen=True, slots=True)
class OrCond(CondPlan):
    left: CondPlan
    right: CondPlan


def iter_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Yield ``node`` and every nested plan node, pre-order."""
    stack: list[PlanNode] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, FnNode):
            stack.extend(current.args)
        elif isinstance(current, LetNode):
            stack.extend((current.value, current.body))
        elif isinstance(current, WhereNode):
            stack.extend(_condition_plans(current.condition))
            stack.append(current.body)
        elif isinstance(current, ForNode):
            stack.extend((current.source, current.body))
        elif isinstance(current, JoinForNode):
            stack.extend((current.source, current.key_outer,
                          current.key_inner, current.body))
            if current.residual is not None:
                stack.extend(_condition_plans(current.residual))
            if current.inner_filter is not None:
                stack.extend(_condition_plans(current.inner_filter))


def _condition_plans(condition: CondPlan) -> list[PlanNode]:
    if isinstance(condition, EmptyCond):
        return [condition.expr]
    if isinstance(condition, (EqualCond, SomeEqualCond, LessCond)):
        return [condition.left, condition.right]
    if isinstance(condition, NotCond):
        return _condition_plans(condition.condition)
    if isinstance(condition, (AndCond, OrCond)):
        return _condition_plans(condition.left) + _condition_plans(condition.right)
    raise TypeError(f"unknown condition plan: {type(condition).__name__}")
