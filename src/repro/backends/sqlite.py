"""Backend adapter for the Section 4 translation executed on SQLite."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.backends.base import Backend, BackendCapabilities, ExecutionOptions
from repro.backends.registry import register_backend
from repro.concurrency import ThreadLocalPool
from repro.encoding.updates import UpdateDelta, splice_rows
from repro.sql.sqlite_backend import SQLITE_MAX_WIDTH, SQLiteDatabase
from repro.xml.forest import Forest

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import CompiledQuery
    from repro.encoding.interval import IntervalTuple
    from repro.encoding.updates import DocumentUpdate

#: Delta-log entries kept per document; a thread farther behind than this
#: re-shreds from the authoritative rows instead of replaying the tail.
_DELTA_LOG_LIMIT = 32


class _DocState:
    """Shared (cross-thread) state of one prepared document.

    ``generation`` is the *major* generation — bumped by every full
    (re)load, telling threads to re-shred wholesale.  ``minor`` counts
    incremental deltas applied since the last major bump; threads at the
    same major but an older minor replay just the delta tail from ``log``
    (ranged ``DELETE`` + batched ``INSERT``) instead of re-shredding.
    After the first update ``rows``/``width`` hold the authoritative
    document-wrapped snapshot (kept current by splicing — C-level list
    copies) and ``forest`` is dropped; before that, ``forest`` is the
    load source.
    """

    __slots__ = ("generation", "forest", "rows", "width", "revision",
                 "minor", "log")

    def __init__(self, generation: int, forest: Forest | None):
        self.generation = generation
        self.forest = forest
        self.rows: "list[IntervalTuple] | None" = None
        self.width: int | None = None
        #: Updatable-document revision the state reflects (delta chaining).
        self.revision: int | None = None
        self.minor = 0
        self.log: list[tuple[int, UpdateDelta]] = []


class _ThreadDatabase:
    """One worker thread's database plus what it has materialized.

    ``loaded`` maps document name → the ``(major, minor)`` generation
    pair shredded into this database; comparing it against the backend's
    current generation map tells a thread exactly which documents it must
    (re)load — and whether a delta-tail replay suffices.
    """

    __slots__ = ("database", "loaded")

    def __init__(self, database: SQLiteDatabase):
        self.database = database
        self.loaded: dict[str, tuple[int, int]] = {}

    def close(self) -> None:
        self.database.close()


@register_backend
class SQLiteBackend(Backend):
    """Run the single-statement SQL translation on a stock SQLite engine.

    Thread safety hinges on where the shredded tables live:

    * ``:memory:`` (the default) — in-memory SQLite databases are
      **per connection**, so the backend keeps one
      :class:`~repro.sql.sqlite_backend.SQLiteDatabase` per worker thread
      (lazily, via :class:`~repro.concurrency.ThreadLocalPool`).  Every
      ``prepare``/``invalidate`` bumps a monotonic per-document
      generation; each thread re-shreds exactly the documents whose
      generation it has not materialized yet, so all threads observe a
      consistent snapshot without sharing a connection.
    * a file path — the tables are shared on disk, so all threads share
      one database and executions serialize on an internal lock (the
      stdlib driver does not support concurrent statements on one
      connection).

    :meth:`~Backend.close` closes every thread's connection in one
    idempotent sweep, from whatever thread calls it.
    """

    name = "sqlite"
    capabilities = BackendCapabilities(
        prepared_documents=True,
        updates=True,
        delta_updates=True,
        max_width=SQLITE_MAX_WIDTH,  # 64-bit integers, Section 4.3
        strategies=(),  # join choice belongs to SQLite's own planner
        description="Section 4 single-SQL-statement translation on SQLite",
    )

    def __init__(self, path: str = ":memory:", mode: str = "staged") -> None:
        super().__init__()
        self._path = path
        self._mode = mode
        #: name → shared document state; major generations are globally
        #: monotonic so per-thread databases know exactly what is stale.
        self._generations: dict[str, _DocState] = {}
        self._next_generation = 0
        self._pool: ThreadLocalPool[_ThreadDatabase] = ThreadLocalPool(
            lambda: _ThreadDatabase(SQLiteDatabase(self._path)))
        # File-backed databases share tables between connections, so all
        # threads use one database and serialize on this lock.
        self._serial = threading.RLock() if path != ":memory:" else None
        self._shared: _ThreadDatabase | None = None

    # -- per-thread database management ----------------------------------------

    @property
    def database(self) -> SQLiteDatabase:
        """The calling thread's database, synced to the current documents."""
        return self._thread_database().database

    def _thread_database(self) -> _ThreadDatabase:
        if self._serial is not None:
            with self._serial:
                if self._shared is None:
                    self._check_open()
                    self._shared = _ThreadDatabase(SQLiteDatabase(self._path))
                state = self._shared
                self._sync(state)
                return state
        state = self._pool.get()
        self._sync(state)
        return state

    def _sync(self, state: _ThreadDatabase) -> None:
        """Bring ``state`` current: delta-tail replay or full (re)shred.

        A thread at the same major generation whose missing minors are all
        still in the delta log replays just those deltas — the same ranged
        ``DELETE`` + batched ``INSERT`` the updating thread ran — instead
        of re-shredding the document.  Everything else (new document, new
        major generation, log evicted past the thread's minor) is a full
        load from the forest or the authoritative row snapshot.
        """
        pending: list[tuple] = []
        with self._lock:
            for name, doc in self._generations.items():
                current = (doc.generation, doc.minor)
                have = state.loaded.get(name)
                if have == current:
                    continue
                if (have is not None and have[0] == doc.generation
                        and doc.minor > have[1]):
                    tail = [delta for minor, delta in doc.log
                            if minor > have[1]]
                    if len(tail) == doc.minor - have[1]:
                        pending.append((name, current, "delta", tail))
                        continue
                if doc.rows is not None:
                    pending.append((name, current, "rows",
                                    (doc.rows, doc.width)))
                else:
                    pending.append((name, current, "forest", doc.forest))
        for name, current, kind, payload in pending:
            if kind == "delta":
                for delta in payload:
                    state.database.apply_delta(name, delta)
            elif kind == "rows":
                rows, width = payload
                state.database.load_encoded(name, rows, width)
            else:
                state.database.load_document(name, payload)
            state.loaded[name] = current

    def _load(self, name: str, forest: Forest) -> None:
        # Called under the backend lock (base.prepare).  Bump the
        # generation, then shred eagerly for the calling thread so
        # prepare stays the untimed phase (benchmark methodology).
        self._next_generation += 1
        self._generations[name] = _DocState(self._next_generation, forest)
        self._thread_database()

    def apply_update(self, name: str, update: "DocumentUpdate") -> bool:
        """Absorb an update as a delta-log append (or a snapshot rebase).

        When the recorded revision matches the update's base, the carried
        deltas go onto the shared log and the authoritative row snapshot
        is spliced forward; only the *minor* generation moves, so every
        per-thread connection replays the same ranged ``DELETE`` +
        batched ``INSERT`` instead of re-shredding.  Any other update
        (first after a forest prepare, relabel/width change in the chain)
        rebases: the authoritative rows become the update's wrapped
        snapshot and the *major* generation bumps, telling threads to
        re-shred wholesale — still without materializing a ``Forest``.
        """
        with self._lock:
            self._check_open()
            doc = self._generations.get(name)
            if doc is None or name not in self._prepared:
                return False
            if (update.deltas and doc.rows is not None
                    and doc.revision == update.base_revision):
                for delta in update.deltas:
                    doc.rows = splice_rows(doc.rows, delta)
                    doc.minor += 1
                    doc.log.append((doc.minor, delta))
                doc.width = update.deltas[-1].new_width
                del doc.log[:-_DELTA_LOG_LIMIT]
            else:
                self._next_generation += 1
                doc.generation = self._next_generation
                doc.rows = update.rows()
                doc.width = update.width
                doc.minor = 0
                doc.log.clear()
            doc.forest = None
            doc.revision = update.revision
            # The stale forest must not linger in the prepared map; the
            # empty-tuple sentinel marks prepared-without-forest.
            self._prepared[name] = ()
        # Shred eagerly for the calling thread (outside the backend lock;
        # prepare/update is the untimed phase).
        self._thread_database()
        return True

    def _unload(self, name: str) -> None:
        # Dropping the generation is enough: per-thread tables for the
        # old contents are replaced wholesale by the next load's sync.
        self._generations.pop(name, None)

    def _close(self) -> None:
        if self._serial is not None:
            with self._serial:
                if self._shared is not None:
                    self._shared.close()
                    self._shared = None
        self._pool.close_all()

    # -- execution --------------------------------------------------------------

    def _runner(self, compiled: "CompiledQuery",
                options: ExecutionOptions) -> Callable[[], Forest]:
        self._bindings(compiled)  # uniform missing-document error
        state = self._thread_database()
        database = state.database
        translation = database.translate(compiled.core)
        mode = self._mode
        serial = self._serial
        # self._tracer is read at call time, not build time, so a runner
        # built once can be driven both traced and untraced.
        if serial is None:
            return lambda: database.run_translation(
                translation, mode=mode,
                tracer=self._tracer, metrics=options.metrics,
                guard=options.guard)

        def run() -> Forest:
            with serial:
                return database.run_translation(
                    translation, mode=mode,
                    tracer=self._tracer, metrics=options.metrics,
                    guard=options.guard)

        return run
