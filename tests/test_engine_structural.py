"""Tests for DeepCompare (Algorithm 5.3) and canonical structural keys."""

from repro.encoding.interval import encode
from repro.engine.structural import (
    EQUAL,
    GREATER,
    LESS,
    canonical_key,
    deep_compare,
    forests_equal,
    merge_matching_keys,
    tree_keys,
)
from repro.xml.forest import compare_forests
from repro.xml.text_parser import parse_forest


def enc(source: str):
    return list(encode(parse_forest(source)).tuples)


def sign(value: int) -> int:
    return (value > 0) - (value < 0)


class TestDeepCompare:
    def test_equal_forests(self):
        assert deep_compare(enc("<a><b/></a>"), enc("<a><b/></a>")) == EQUAL

    def test_label_order(self):
        assert deep_compare(enc("<a/>"), enc("<b/>")) == LESS
        assert deep_compare(enc("<b/>"), enc("<a/>")) == GREATER

    def test_prefix_is_less(self):
        assert deep_compare(enc("<a/>"), enc("<a/><b/>")) == LESS
        assert deep_compare(enc("<a/><b/>"), enc("<a/>")) == GREATER

    def test_empty_forest(self):
        assert deep_compare([], []) == EQUAL
        assert deep_compare([], enc("<a/>")) == LESS

    def test_missing_sibling_rule(self):
        # [a [b]] > [a, b]: the nested forest has an extra child inside <a>.
        assert deep_compare(enc("<a><b/></a>"), enc("<a/><b/>")) == GREATER
        assert deep_compare(enc("<a/><b/>"), enc("<a><b/></a>")) == LESS

    def test_depth_dominates_label(self):
        # [a [c]] vs [a, b]: depth difference decides before labels.
        assert deep_compare(enc("<a><c/></a>"), enc("<a/><b/>")) == GREATER

    def test_nontight_encodings_compare_equal(self):
        tight = enc("<a><b/></a>")
        loose = [("<a>", 0, 100), ("<b>", 10, 20)]
        assert deep_compare(tight, loose) == EQUAL

    def test_agrees_with_reference_order(self):
        sources = [
            "", "<a/>", "<b/>", "<a/><b/>", "<a><b/></a>",
            "<a><b/><c/></a>", "<a><b><c/></b></a>", "<a>text</a>",
            "<a/><a/>", "<b><a/></b>",
        ]
        forests = [parse_forest(s) for s in sources]
        encodings = [enc(s) for s in sources]
        for i, left in enumerate(forests):
            for j, right in enumerate(forests):
                expected = sign(compare_forests(left, right))
                assert deep_compare(encodings[i], encodings[j]) == expected, \
                    (sources[i], sources[j])


class TestCanonicalKey:
    def test_key_structure(self):
        key = canonical_key(enc("<a><b/></a><c/>"))
        assert key == ((0, "<a>"), (1, "<b>"), (0, "<c>"))

    def test_key_comparison_matches_deep_compare(self):
        sources = ["<a/>", "<a/><b/>", "<a><b/></a>", "<b/>", "",
                   "<a><b><c/></b></a>", "<a/><a/>"]
        for left in sources:
            for right in sources:
                key_cmp = sign((canonical_key(enc(left))
                                > canonical_key(enc(right)))
                               - (canonical_key(enc(left))
                                  < canonical_key(enc(right))))
                assert key_cmp == deep_compare(enc(left), enc(right))

    def test_keys_hashable_for_dedup(self):
        assert canonical_key(enc("<a/>")) == canonical_key(
            [("<a>", 5, 90)])
        assert hash(canonical_key(enc("<a/>")))

    def test_tree_keys_per_tree(self):
        keys = tree_keys(enc("<a><b/></a><c/>"))
        assert keys == [((0, "<a>"), (1, "<b>")), ((0, "<c>"),)]

    def test_forests_equal(self):
        assert forests_equal(enc("<a><b/></a>"), [("<a>", 0, 9), ("<b>", 3, 4)])
        assert not forests_equal(enc("<a/>"), enc("<b/>"))


class TestMergeMatchingKeys:
    def test_basic_match(self):
        left = [(("k1",), 0), (("k2",), 1)]
        right = [(("k2",), 10), (("k3",), 11)]
        assert merge_matching_keys(sorted(left), sorted(right)) == [(1, 10)]

    def test_duplicate_keys_cross_product(self):
        left = [(("k",), 0), (("k",), 1)]
        right = [(("k",), 10), (("k",), 11)]
        pairs = merge_matching_keys(left, right)
        assert sorted(pairs) == [(0, 10), (0, 11), (1, 10), (1, 11)]

    def test_no_matches(self):
        assert merge_matching_keys([(("a",), 0)], [(("b",), 1)]) == []

    def test_empty_inputs(self):
        assert merge_matching_keys([], []) == []
        assert merge_matching_keys([(("a",), 0)], []) == []

    def test_linear_merge_agrees_with_bruteforce(self):
        import itertools
        left = sorted((((chr(97 + i % 3),),), i) for i in range(9))
        left = [(key[0], tag) for key, tag in left]
        right = sorted((((chr(97 + i % 4),),), 100 + i) for i in range(8))
        right = [(key[0], tag) for key, tag in right]
        expected = sorted(
            (lt, rt)
            for (lk, lt), (rk, rt) in itertools.product(left, right)
            if lk == rk
        )
        assert sorted(merge_matching_keys(left, right)) == expected
