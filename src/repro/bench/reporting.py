"""Paper-style table rendering for benchmark sweeps (Figures 8–11)."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.bench.harness import SweepResult

#: Display names matching the paper's row labels where applicable.
SYSTEM_LABELS = {
    "naive": "Naive (NL interp.)",
    "di-nlj": "DI-NLJ",
    "di-msj": "DI-MSJ",
    "sqlite": "SQLite (generic)",
}

BREAKDOWN_CATEGORIES = ("paths", "join", "construction")


def format_timing_table(result: SweepResult, title: str = "") -> str:
    """Render a sweep as the paper's timing tables (CPU seconds per cell)."""
    header = ["System"] + [_scale_label(scale) for scale in result.scales]
    rows = [
        [SYSTEM_LABELS.get(system, system)]
        + [result.cell(system, scale).display for scale in result.scales]
        for system in result.systems
    ]
    table = _render(header, rows)
    if title:
        return f"{title}\n{table}"
    return table


def format_breakdown_table(results: Mapping[str, SweepResult],
                           title: str = "") -> str:
    """Render the Figure 10 per-component percentage breakdown.

    ``results`` maps system names to sweeps run with
    ``collect_breakdown=True``.
    """
    scales = None
    rows: list[list[str]] = []
    for system, sweep_result in results.items():
        if scales is None:
            scales = sweep_result.scales
        for category in BREAKDOWN_CATEGORIES:
            row = [SYSTEM_LABELS.get(system, system), category.capitalize()]
            for scale in sweep_result.scales:
                cell = sweep_result.cell(system, scale)
                if cell.status != "ok" or cell.breakdown is None:
                    row.append(cell.display)
                else:
                    row.append(f"{cell.breakdown.get(category, 0.0) * 100:.0f}%")
            rows.append(row)
    header = ["System", "Component"] + [_scale_label(s) for s in (scales or [])]
    table = _render(header, rows)
    if title:
        return f"{title}\n{table}"
    return table


def format_series(result: SweepResult) -> dict[str, list[tuple[float, str]]]:
    """Per-system (scale, display) series — the figure-plotting view."""
    return {
        system: [(scale, result.cell(system, scale).display)
                 for scale in result.scales]
        for system in result.systems
    }


def _scale_label(scale: float) -> str:
    return f"sf={scale:g}"


def _render(header: list[str], rows: Iterable[list[str]]) -> str:
    rows = list(rows)
    widths = [len(column) for column in header]
    for row in rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(header), separator] + [line(row) for row in rows])
