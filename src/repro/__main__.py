"""Command-line interface: run XQuery against XML files.

Examples::

    python -m repro 'document("a.xml")/site/people/person/name' \
        --doc a.xml=./auction.xml

    python -m repro @query.xq --doc a.xml=./auction.xml --backend sqlite
    python -m repro @query.xq --doc a.xml=./auction.xml --explain
    python -m repro @query.xq --doc a.xml=./auction.xml --sql
    python -m repro @query.xq --doc a.xml=./auction.xml \
        --trace trace.json --metrics --verbose
    python -m repro @q1.xq @q2.xq @q3.xq --doc a.xml=./auction.xml --jobs 4
    python -m repro @query.xq --doc a.xml=./auction.xml \
        --serve-telemetry 9464 --serve-linger 60
    python -m repro top 127.0.0.1:9464
    python -m repro serve --doc a.xml=./auction.xml --port 8080 \
        --backend procpool
"""

from __future__ import annotations

import argparse
import signal
import sys
import time

from repro.api import compile_xquery
from repro.backends.registry import registered_backends
from repro.encoding.interval import encode
from repro.errors import OverloadError, QueryCancelledError, ReproError
from repro.obs.export import render_prometheus, write_chrome_trace
from repro.obs.logs import setup_console_logging
from repro.resilience.admission import INTERACTIVE, PRIORITIES, AdmissionConfig
from repro.session import XQuerySession
from repro.xml.text_parser import parse_forest
from repro.xquery.lowering import document_forest


class _GracefulShutdown(Exception):
    """Raised by the SIGTERM handler to unwind into a graceful drain.

    Raising (rather than setting a flag) interrupts whatever the main
    thread is blocked on — the ``--serve-linger`` sleep, a batch gather —
    so shutdown starts immediately; the drain itself happens in the
    ``finally`` that closes the session.
    """


def _load_query(argument: str) -> str:
    if argument.startswith("@"):
        with open(argument[1:]) as handle:
            return handle.read()
    return argument


def _parse_doc_argument(argument: str) -> tuple[str, str]:
    uri, separator, path = argument.partition("=")
    if not separator:
        raise argparse.ArgumentTypeError(
            f"--doc expects uri=path, got {argument!r}")
    return uri, path


def _main_top(argv: list[str]) -> int:
    """``python -m repro top URL`` — one-shot console telemetry summary."""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Render a running telemetry server's percentile table "
                    "(see --serve-telemetry and docs/OBSERVABILITY.md).",
    )
    parser.add_argument("url",
                        help="telemetry server address: HOST:PORT, a base "
                             "URL, or the full /debug/queries endpoint")
    args = parser.parse_args(argv)
    from repro.obs.serve import run_top

    try:
        print(run_top(args.url))
        return 0
    except OSError as error:
        print(f"error: cannot reach telemetry server at {args.url}: "
              f"{error}", file=sys.stderr)
        return 1


def _main_serve(argv: list[str]) -> int:
    """``python -m repro serve`` — the asyncio HTTP query front-end.

    One event loop holds every in-flight request
    (:meth:`XQuerySession.run_async`); evaluation happens on the
    session's worker pool, or in worker *processes* with
    ``--backend procpool`` (shared-memory document encodings, one
    attach per worker — docs/CONCURRENCY.md "Process-parallel
    serving").  SIGTERM/SIGINT drain gracefully.
    """
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve XQuery over HTTP: POST the query text to "
                    "/query; GET /healthz for load-balancer health.",
    )
    parser.add_argument("--doc", action="append", default=[],
                        type=_parse_doc_argument, metavar="URI=PATH",
                        help="bind document(URI) to the XML file at PATH")
    parser.add_argument("--xmark", action="append", default=[], nargs=2,
                        metavar=("URI", "SCALE"),
                        help="bind document(URI) to a generated XMark "
                             "document at this scale factor")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--backend", default=None,
                        choices=list(registered_backends()),
                        help="backend requests run on unless they name "
                             "their own (procpool = process-parallel tier)")
    parser.add_argument("--strategy", default="msj", choices=["msj", "nlj"])
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-request deadline")
    parser.add_argument("--warm", action="append", default=[],
                        metavar="QUERY",
                        help="query text (or @path) compiled on startup "
                             "before traffic arrives (repeatable)")
    parser.add_argument("--serve-telemetry", type=int, default=None,
                        metavar="PORT",
                        help="also serve /metrics + /debug/queries on this "
                             "port")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="on shutdown, give in-flight requests this "
                             "long before cancelling them")
    args = parser.parse_args(argv)

    from repro.serving import QueryServer, serve_until_stopped

    session = XQuerySession(backend=args.backend or "engine",
                            strategy=args.strategy)
    try:
        for uri, path in args.doc:
            session.add_document_file(uri, path)
        for uri, scale in args.xmark:
            session.add_xmark_document(uri, float(scale))
        for warm in args.warm:
            session.prepare(_load_query(warm))
        if args.serve_telemetry is not None:
            telemetry = session.serve_telemetry(port=args.serve_telemetry)
            print(f"telemetry serving on {telemetry.url}", file=sys.stderr)
        server = QueryServer(session, host=args.host, port=args.port,
                             backend=args.backend,
                             default_deadline=args.timeout)

        async def run() -> None:
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix event loops
            await server.start()
            print(f"query server listening on {server.url}",
                  file=sys.stderr)
            await serve_until_stopped(server, stop)
            print("shutdown signal received: draining", file=sys.stderr)

        asyncio.run(run())
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        session.close(drain_timeout=args.drain_timeout)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "top":
        return _main_top(argv[1:])
    if argv and argv[0] == "serve":
        return _main_serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run XQuery over XML documents via dynamic intervals.",
    )
    parser.add_argument("query", nargs="+",
                        help="XQuery text, or @path to read it from a file; "
                             "several queries run as one batch (see --jobs)")
    parser.add_argument("--doc", action="append", default=[],
                        type=_parse_doc_argument, metavar="URI=PATH",
                        help="bind document(URI) to the XML file at PATH")
    parser.add_argument("--backend", default="engine",
                        choices=list(registered_backends()),
                        help="execution backend (from the backend registry)")
    parser.add_argument("--strategy", default="msj", choices=["msj", "nlj"])
    parser.add_argument("--indent", type=int, default=None,
                        help="pretty-print the result")
    parser.add_argument("--explain", action="store_true",
                        help="print the physical plan instead of running; "
                             "with --doc bindings the plan is annotated "
                             "with estimated vs. observed cardinalities")
    parser.add_argument("--explain-verbose", action="store_true",
                        help="with --explain: include the compilation "
                             "pipeline trace (per-pass timings + snapshots)")
    parser.add_argument("--sql", action="store_true",
                        help="print the translated single SQL statement "
                             "instead of running")
    parser.add_argument("--trace", metavar="FILE.json", default=None,
                        help="write a Chrome trace_event JSON of the run "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics", action="store_true",
                        help="dump Prometheus-format metrics to stderr "
                             "after the run")
    parser.add_argument("--verbose", action="store_true",
                        help="log progress to stderr (the 'repro' loggers)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="cancel the query after this many seconds "
                             "(raises a QueryTimeoutError; see "
                             "docs/ROBUSTNESS.md)")
    parser.add_argument("--max-tuples", type=int, default=None, metavar="N",
                        help="cancel the query once it has produced more "
                             "than N interval tuples")
    parser.add_argument("--fallback", action="append", default=[],
                        choices=list(registered_backends()), metavar="BACKEND",
                        help="backend(s) to degrade to, in order, when the "
                             "primary fails (repeatable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run the queries concurrently on N worker "
                             "threads (results print in input order; see "
                             "docs/CONCURRENCY.md)")
    parser.add_argument("--serve-telemetry", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics + /healthz + /debug/queries on "
                             "this port while the queries run (0 picks a "
                             "free port; the URL prints to stderr)")
    parser.add_argument("--serve-linger", type=float, default=0.0,
                        metavar="SECONDS",
                        help="with --serve-telemetry: keep the process (and "
                             "the endpoint) alive this long after the "
                             "queries finish, for scrapers and `repro top`; "
                             "SIGTERM ends the linger early with a graceful "
                             "drain")
    parser.add_argument("--priority", default=INTERACTIVE,
                        choices=list(PRIORITIES),
                        help="admission priority class for the queries "
                             "(batch work admits behind interactive work)")
    parser.add_argument("--admission-limit", type=int, default=None,
                        metavar="N",
                        help="cap concurrently executing queries at N "
                             "(admission control; see docs/ROBUSTNESS.md)")
    parser.add_argument("--admission-queue", type=int, default=None,
                        metavar="N",
                        help="bound the admission queue at N waiting "
                             "queries; arrivals past it are shed with a "
                             "retry-after hint")
    parser.add_argument("--adaptive-admission", action="store_true",
                        help="adapt the concurrency limit to the observed "
                             "p99 (AIMD) instead of keeping it static")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="on shutdown, give in-flight queries this long "
                             "to finish before cancelling them")
    args = parser.parse_args(argv)

    if args.verbose:
        setup_console_logging()

    try:
        queries = [_load_query(argument) for argument in args.query]

        if args.explain or args.explain_verbose or args.sql:
            if len(queries) > 1:
                raise ReproError(
                    "--explain/--sql take exactly one query")
            compiled = compile_xquery(queries[0])

        documents: dict[str, str] = {}
        for uri, path in args.doc:
            with open(path) as handle:
                documents[uri] = handle.read()

        if args.explain or args.explain_verbose:
            if documents:
                # With real documents: run once on the engine backend so
                # the plan carries estimated vs. *observed* cardinalities
                # per node ("est N → obs M tuples").
                with XQuerySession(strategy=args.strategy) as session:
                    for uri, text in documents.items():
                        session.add_document(uri, text)
                    print(session.explain(queries[0],
                                          verbose=args.explain_verbose,
                                          analyze=True))
            else:
                print(compiled.explain(args.strategy,
                                       verbose=args.explain_verbose))
            return 0

        if args.sql:
            tables = {}
            for uri, var in compiled.documents.items():
                if uri not in documents:
                    raise ReproError(f"missing --doc binding for {uri!r}")
                wrapped = document_forest(parse_forest(documents[uri]))
                tables[var] = (f"doc_{len(tables)}", encode(wrapped).width)
            print(compiled.to_sql(tables).sql)
            return 0

        admission = None
        if (args.admission_limit is not None
                or args.admission_queue is not None
                or args.adaptive_admission):
            knobs: dict = {}
            if args.admission_limit is not None:
                knobs["max_concurrency"] = args.admission_limit
            if args.admission_queue is not None:
                knobs["max_queue_depth"] = args.admission_queue
            if args.adaptive_admission:
                knobs["adaptive"] = True
            admission = AdmissionConfig(**knobs)

        restore_sigterm: "tuple | None" = None
        session = XQuerySession(backend=args.backend, strategy=args.strategy,
                                admission=admission)
        try:
            if args.serve_telemetry is not None:
                def _on_sigterm(signum: int, frame: object) -> None:
                    raise _GracefulShutdown()

                restore_sigterm = (
                    signal.signal(signal.SIGTERM, _on_sigterm),)
            for uri, text in documents.items():
                session.add_document(uri, text)
            server = None
            if args.serve_telemetry is not None:
                server = session.serve_telemetry(port=args.serve_telemetry)
                print(f"telemetry serving on {server.url}", file=sys.stderr)
            traced = bool(args.trace) or args.metrics
            if len(queries) > 1 or args.jobs > 1:
                results = session.run_many(
                    queries, max_workers=max(args.jobs, 1),
                    trace=traced,
                    deadline=args.timeout, budget=args.max_tuples,
                    fallback=tuple(args.fallback),
                    priority=args.priority,
                    return_errors=True)
            else:
                results = [session.run(queries[0], trace=traced,
                                       deadline=args.timeout,
                                       budget=args.max_tuples,
                                       fallback=tuple(args.fallback),
                                       priority=args.priority)]
            first_error: BaseException | None = None
            for result in results:
                if isinstance(result, (OverloadError, QueryCancelledError)):
                    # Load shedding is the service protecting itself, not
                    # a failed process: report it and keep exit status 0.
                    kind = ("shed" if isinstance(result, OverloadError)
                            else "cancelled")
                    print(f"{kind}: {result}", file=sys.stderr)
                    continue
                if isinstance(result, BaseException):
                    if first_error is None:
                        first_error = result
                    continue
                if result.degraded:
                    for degradation in result.degradations:
                        print(f"degraded: {degradation}", file=sys.stderr)
                    print(f"answered by fallback backend {result.backend!r}",
                          file=sys.stderr)
                print(result.to_xml(indent=args.indent))
            if first_error is not None:
                raise first_error
            # Export after to_xml so the serialize span is in the file.
            if args.trace:
                write_chrome_trace(
                    [result.trace for result in results
                     if not isinstance(result, BaseException)
                     and result.trace is not None], args.trace)
                print(f"trace written to {args.trace}", file=sys.stderr)
            if args.metrics:
                print(render_prometheus(session.metrics), file=sys.stderr)
            if server is not None and args.serve_linger > 0:
                print(f"telemetry lingering {args.serve_linger:g}s on "
                      f"{server.url}", file=sys.stderr)
                time.sleep(args.serve_linger)
        except _GracefulShutdown:
            print("SIGTERM received: draining", file=sys.stderr)
        finally:
            session.close(drain_timeout=args.drain_timeout)
            if restore_sigterm is not None:
                signal.signal(signal.SIGTERM, restore_sigterm[0])
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
