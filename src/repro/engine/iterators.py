"""Volcano-style streaming operators (the paper's iterator presentation).

Section 5 presents the special physical operators as demand-driven
iterators over tuples sorted by the left endpoint: Algorithm 5.2 is
``Roots`` with a one-integer state, Algorithm 5.3 consumes two iterators.
This module provides that pipelined form: every operator consumes and
produces lazy tuple streams, so chains of path steps run in one fused pass
without materializing intermediates.

The eager list-based operators of :mod:`repro.engine.operators` remain the
engine's workhorse (plan nodes need materialized blocks for environment
arithmetic); the streaming forms are equivalent — tested against them —
and are what a C implementation inside a relational executor would look
like.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.encoding.interval import IntervalTuple
from repro.xml.forest import is_element_label, is_text_label

TupleStream = Iterator[IntervalTuple]


class RootsIterator:
    """Algorithm 5.2, transliterated: linear time, O(1) space.

    The paper's pseudo-code::

        Iterator Roots(Iterator T) {
          int max=0;                // distance covered by current root
          Tuple fetch() {
            while (true) {
              TT = T.fetch();
              if (TT==null) return END-OF-INPUT;
              if (TT.l>max) { max = TT.r; return TT; }
            } // otherwise it's a child; loop
          }
        }
    """

    def __init__(self, source: Iterable[IntervalTuple]):
        self._source = iter(source)
        self._max = -1

    def fetch(self) -> IntervalTuple | None:
        """The paper's ``fetch``: next root tuple or ``None`` at the end."""
        for row in self._source:
            if row[1] > self._max:
                self._max = row[2]
                return row
        return None

    def __iter__(self) -> TupleStream:
        while True:
            row = self.fetch()
            if row is None:
                return
            yield row


def roots_stream(source: Iterable[IntervalTuple]) -> TupleStream:
    """Lazy roots extraction (Algorithm 5.2 as a generator)."""
    max_right = -1
    for row in source:
        if row[1] > max_right:
            max_right = row[2]
            yield row


def children_stream(source: Iterable[IntervalTuple]) -> TupleStream:
    """Lazy complement of :func:`roots_stream`."""
    max_right = -1
    for row in source:
        if row[1] > max_right:
            max_right = row[2]
        else:
            yield row


def select_stream(source: Iterable[IntervalTuple],
                  predicate: Callable[[str], bool]) -> TupleStream:
    """Lazy whole-tree filter on the root label."""
    max_right = -1
    keep_right = -1
    for row in source:
        if row[1] > max_right:
            max_right = row[2]
            if predicate(row[0]):
                keep_right = row[2]
        if row[1] <= keep_right:
            yield row


def select_label_stream(source: Iterable[IntervalTuple],
                        label: str) -> TupleStream:
    return select_stream(source, lambda s: s == label)


def textnodes_stream(source: Iterable[IntervalTuple]) -> TupleStream:
    return select_stream(source, is_text_label)


def elementnodes_stream(source: Iterable[IntervalTuple]) -> TupleStream:
    return select_stream(source, is_element_label)


def head_stream(source: Iterable[IntervalTuple], width: int) -> TupleStream:
    """Lazy first-tree-per-environment."""
    current_env = None
    first_right = -1
    for row in source:
        env = row[1] // width
        if env != current_env:
            current_env = env
            first_right = row[2]
        if row[1] <= first_right:
            yield row


def tail_stream(source: Iterable[IntervalTuple], width: int) -> TupleStream:
    """Lazy all-but-first-tree-per-environment."""
    current_env = None
    first_right = -1
    for row in source:
        env = row[1] // width
        if env != current_env:
            current_env = env
            first_right = row[2]
        elif row[1] > first_right:
            yield row


def data_stream(source: Iterable[IntervalTuple], width: int) -> TupleStream:
    """Lazy atomization (see :func:`repro.engine.operators.data`)."""
    open_rights: list[int] = []
    current_env = None
    root_is_text = False
    for s, l, r in source:
        env = l // width
        if env != current_env:
            current_env = env
            open_rights.clear()
        while open_rights and open_rights[-1] < l:
            open_rights.pop()
        depth = len(open_rights)
        if depth == 0:
            root_is_text = is_text_label(s)
            if root_is_text:
                yield (s, l, r)
        elif depth == 1 and not root_is_text and is_text_label(s):
            yield (s, l, r)
        open_rights.append(r)


def collect_columns(stream: Iterable[IntervalTuple]):
    """Drain a tuple stream into :class:`IntervalColumns`.

    The bridge back into the columnar engine: streaming pipelines (all the
    generators above accept an ``IntervalColumns`` as their source, since
    it iterates as tuples) can hand their result to the whole-column
    kernels without an intermediate list round-trip by the caller.
    """
    from repro.engine.columns import IntervalColumns, make_int_column

    labels: list[str] = []
    lefts: list[int] = []
    rights: list[int] = []
    for s, l, r in stream:
        labels.append(s)
        lefts.append(l)
        rights.append(r)
    return IntervalColumns(labels, make_int_column(lefts),
                           make_int_column(rights))


def path_pipeline(source: Iterable[IntervalTuple],
                  steps: Iterable[tuple[str, str | None]],
                  width: int) -> TupleStream:
    """Fuse a chain of path steps into one lazy pipeline.

    ``steps`` are (kind, argument) pairs with kind in ``children``,
    ``select``, ``text``, ``element``, ``roots``, ``head``, ``tail``,
    ``data``.  The whole chain runs in a single pass over the input —
    the "sequence of linear time operations" Section 5 aims for.
    """
    stream: TupleStream = iter(source)
    for kind, argument in steps:
        if kind == "children":
            stream = children_stream(stream)
        elif kind == "select":
            if argument is None:
                raise ValueError("select step requires a label argument")
            stream = select_label_stream(stream, argument)
        elif kind == "text":
            stream = textnodes_stream(stream)
        elif kind == "element":
            stream = elementnodes_stream(stream)
        elif kind == "roots":
            stream = roots_stream(stream)
        elif kind == "head":
            stream = head_stream(stream, width)
        elif kind == "tail":
            stream = tail_stream(stream, width)
        elif kind == "data":
            stream = data_stream(stream, width)
        else:
            raise ValueError(f"unknown pipeline step {kind!r}")
    return stream
