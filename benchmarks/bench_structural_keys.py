"""Section 6.2's unshown experiment: structural-equality join keys.

The paper: "we replaced the attribute join keys with elements containing
trees of varying depth and fanout and verified that the costs of
structural-equality join operators grow linearly with the number of nodes
in the join key" — and notes several contemporary systems could not even
compare XML structures correctly.

These benchmarks join two record collections on *tree-valued* keys of
growing size via the DI engine's structural merge join and check the
per-key-node cost stays flat (linear total growth).
"""

import random
import time

import pytest

from repro.api import compile_xquery
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.engine.evaluator import DIEngine
from repro.xml.forest import Node, element, text
from repro.xquery.lowering import document_forest

JOIN_QUERY = """
for $l in document("db.xml")/db/left/rec
let $m := for $r in document("db.xml")/db/right/rec
          where deep-equal($l/key, $r/key)
          return $r/payload
where not(empty($m))
return <hit>{count($m)}</hit>
"""

RECORDS = 40


def _key_tree(rng: random.Random, depth: int, fanout: int,
              variant: int) -> Node:
    """A deterministic tree of the given shape, tagged by ``variant``."""
    if depth <= 1:
        return text(f"v{variant}")
    children = [_key_tree(rng, depth - 1, fanout, variant)
                for _ in range(fanout)]
    return element(f"n{variant % 3}", children)


def build_document(depth: int, fanout: int, seed: int = 7) -> Node:
    """Two record lists whose keys are trees with ~fanout^depth nodes."""
    rng = random.Random(seed)
    variants = 8  # distinct key values → selective but non-empty join

    def records(count: int) -> list[Node]:
        return [
            element("rec", (
                element("key", (_key_tree(rng, depth, fanout,
                                          rng.randrange(variants)),)),
                element("payload", (text(f"p{i}"),)),
            ))
            for i in range(count)
        ]

    return element("db", (
        element("left", records(RECORDS)),
        element("right", records(RECORDS)),
    ))


def _run_join(document: Node):
    compiled = compile_xquery(JOIN_QUERY)
    plan = compile_plan(compiled.core, JoinStrategy.MSJ,
                        base_vars=compiled.documents.values())
    bindings = {var: document_forest(document)
                for var in compiled.documents.values()}
    return DIEngine().run_plan(plan, bindings)


@pytest.mark.parametrize("depth,fanout", [(2, 2), (3, 2), (4, 2), (3, 4)])
def test_structural_key_join(benchmark, depth, fanout):
    document = build_document(depth, fanout)
    result = benchmark(_run_join, document)
    assert result  # the join is selective but never empty


def test_cost_grows_linearly_with_key_size():
    """Per-key-node time must not blow up as keys grow ~16× in size."""
    timings = []
    for depth, fanout in ((2, 2), (4, 2), (6, 2)):
        document = build_document(depth, fanout)
        key_nodes = sum(1 for _ in document.iter_dfs())
        started = time.perf_counter()
        for _ in range(3):
            _run_join(document)
        elapsed = (time.perf_counter() - started) / 3
        timings.append((key_nodes, elapsed))
    (small_nodes, small_time), _, (large_nodes, large_time) = timings
    node_ratio = large_nodes / small_nodes
    time_ratio = large_time / max(small_time, 1e-9)
    # Linear growth means time ratio tracks node ratio; allow generous
    # constant-factor noise but reject quadratic (ratio²) behaviour.
    assert time_ratio < node_ratio ** 1.5


def test_join_correct_against_interpreter():
    from repro.xquery.interpreter import evaluate

    document = build_document(3, 2)
    compiled = compile_xquery(JOIN_QUERY)
    bindings = {var: document_forest(document)
                for var in compiled.documents.values()}
    assert _run_join(document) == evaluate(compiled.core, bindings)
