"""Tests for plan compilation and the Section 5 decorrelation rewrite."""

from repro.compiler.decorrelate import (
    join_conjuncts,
    match_join,
    split_conjuncts,
)
from repro.compiler.plan import (
    FnNode,
    ForNode,
    JoinForNode,
    JoinStrategy,
    LetNode,
    VarNode,
    WhereNode,
)
from repro.compiler.planner import compile_plan, explain_plan, plan_free
from repro.xquery.ast import (
    And,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    SomeEqual,
    Var,
    Where,
)
from repro.xquery.lowering import lower_query
from repro.xquery.parser import parse_xquery

BASE = frozenset({"doc"})


def _key(var: str):
    return FnApp("data", (FnApp("children", (Var(var),)),))


def _inner_loop(source=Var("doc")):
    return For("y", source,
               Where(SomeEqual(_key("y"), _key("x")), Var("y")))


class TestConjunctHelpers:
    def test_split_flat(self):
        c = Empty(Var("a"))
        assert split_conjuncts(c) == [c]

    def test_split_nested_and(self):
        a, b, c = Empty(Var("a")), Empty(Var("b")), Empty(Var("c"))
        assert split_conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_join_roundtrip(self):
        a, b = Empty(Var("a")), Empty(Var("b"))
        rebuilt = join_conjuncts([a, b])
        assert split_conjuncts(rebuilt) == [a, b]

    def test_join_empty(self):
        assert join_conjuncts([]) is None


class TestMatchJoin:
    def test_simple_pattern_matches(self):
        match = match_join(_inner_loop(), BASE)
        assert match is not None
        assert match.var == "y"
        assert match.key_inner == _key("y")
        assert match.key_outer == _key("x")
        assert match.residual is None
        assert match.existential is True

    def test_orientation_swap(self):
        loop = For("y", Var("doc"),
                   Where(SomeEqual(_key("x"), _key("y")), Var("y")))
        match = match_join(loop, BASE)
        assert match is not None
        assert match.key_inner == _key("y")

    def test_deep_equal_key(self):
        loop = For("y", Var("doc"),
                   Where(Equal(_key("y"), _key("x")), Var("y")))
        match = match_join(loop, BASE)
        assert match is not None
        assert match.existential is False

    def test_source_dependent_on_outer_rejected(self):
        loop = _inner_loop(source=FnApp("children", (Var("x"),)))
        assert match_join(loop, BASE) is None

    def test_no_where_rejected(self):
        loop = For("y", Var("doc"), Var("y"))
        assert match_join(loop, BASE) is None

    def test_key_mentioning_both_sides_rejected(self):
        both = FnApp("concat", (Var("x"), Var("y")))
        loop = For("y", Var("doc"), Where(SomeEqual(both, _key("x")), Var("y")))
        assert match_join(loop, BASE) is None

    def test_constant_key_rejected(self):
        const = FnApp("text_const", (), (("value", "k"),))
        loop = For("y", Var("doc"), Where(SomeEqual(const, _key("x")), Var("y")))
        assert match_join(loop, BASE) is None

    def test_let_spine_traversed(self):
        loop = For("y", Var("doc"),
                   Let("n", FnApp("children", (Var("y"),)),
                       Where(SomeEqual(_key("y"), _key("x")), Var("n"))))
        match = match_join(loop, BASE)
        assert match is not None
        assert match.let_spine == (("n", FnApp("children", (Var("y"),))),)
        assert match.return_expr == Var("n")

    def test_key_mentioning_spine_var_rejected(self):
        loop = For("y", Var("doc"),
                   Let("n", FnApp("children", (Var("y"),)),
                       Where(SomeEqual(_key("n"), _key("x")), Var("n"))))
        assert match_join(loop, BASE) is None

    def test_residual_split(self):
        condition = And(SomeEqual(_key("y"), _key("x")),
                        Not(Empty(Var("x"))))
        loop = For("y", Var("doc"), Where(condition, Var("y")))
        match = match_join(loop, BASE)
        assert match is not None
        assert match.residual == Not(Empty(Var("x")))
        assert match.inner_residual is None

    def test_spine_conjunct_stays_inside(self):
        loop = For("y", Var("doc"),
                   Let("n", FnApp("children", (Var("y"),)),
                       Where(And(SomeEqual(_key("y"), _key("x")),
                                 Not(Empty(Var("n")))),
                             Var("n"))))
        match = match_join(loop, BASE)
        assert match is not None
        assert match.residual is None
        assert match.inner_residual == Not(Empty(Var("n")))

    def test_less_key_not_matched(self):
        loop = For("y", Var("doc"),
                   Where(Less(_key("y"), _key("x")), Var("y")))
        assert match_join(loop, BASE) is None


class TestCompilePlan:
    def test_both_strategies_decorrelate(self):
        """The paper's plans differ only in the join operator."""
        outer = For("x", Var("doc"), _inner_loop())
        for strategy in (JoinStrategy.NLJ, JoinStrategy.MSJ):
            plan = compile_plan(outer, strategy, base_vars=BASE)
            assert isinstance(plan, ForNode)
            assert isinstance(plan.body, JoinForNode)
            assert plan.body.strategy is strategy

    def test_fallback_when_dependent(self):
        outer = For("x", Var("doc"),
                    _inner_loop(source=FnApp("children", (Var("x"),))))
        for strategy in (JoinStrategy.NLJ, JoinStrategy.MSJ):
            plan = compile_plan(outer, strategy, base_vars=BASE)
            assert isinstance(plan.body, ForNode)

    def test_fallback_expansion_copies_outer_vars(self):
        outer = For("x", Var("doc"),
                    _inner_loop(source=FnApp("children", (Var("x"),))))
        plan = compile_plan(outer, JoinStrategy.NLJ, base_vars=BASE)
        inner = plan.body
        assert isinstance(inner, ForNode)
        assert inner.required_outer == frozenset({"x"})

    def test_fallback_expansion_copies_doc_when_needed(self):
        # A correlated source referencing both x and the document forces
        # the naive expansion to duplicate the document per environment —
        # the quadratic data blow-up.
        source = FnApp("concat", (FnApp("children", (Var("x"),)),
                                  Var("doc")))
        outer = For("x", Var("doc"), _inner_loop(source=source))
        plan = compile_plan(outer, JoinStrategy.NLJ, base_vars=BASE)
        assert isinstance(plan.body, ForNode)
        assert "doc" in plan.required_outer

    def test_required_outer_excludes_doc(self):
        """The decorrelated join reads documents from the base env only."""
        outer = For("x", Var("doc"), _inner_loop())
        for strategy in (JoinStrategy.NLJ, JoinStrategy.MSJ):
            plan = compile_plan(outer, strategy, base_vars=BASE)
            assert "doc" not in plan.required_outer

    def test_q8_plan_shapes(self):
        from repro.xmark.queries import Q8
        core, docs = lower_query(parse_xquery(Q8))
        nlj = compile_plan(core, JoinStrategy.NLJ, base_vars=docs.values())
        msj = compile_plan(core, JoinStrategy.MSJ, base_vars=docs.values())
        assert isinstance(nlj, ForNode)
        assert isinstance(nlj.body, LetNode)
        assert isinstance(nlj.body.value, JoinForNode)
        assert nlj.body.value.strategy is JoinStrategy.NLJ
        assert isinstance(msj.body.value, JoinForNode)
        assert msj.body.value.strategy is JoinStrategy.MSJ
        assert msj.required_outer == frozenset()

    def test_q9_decorrelates_both_levels(self):
        from repro.compiler.plan import iter_plan
        from repro.xmark.queries import Q9
        core, docs = lower_query(parse_xquery(Q9))
        msj = compile_plan(core, JoinStrategy.MSJ, base_vars=docs.values())
        join_nodes = [node for node in iter_plan(msj)
                      if isinstance(node, JoinForNode)]
        assert len(join_nodes) == 2

    def test_where_node_body_free(self):
        core = Where(Empty(Var("a")), FnApp("concat", (Var("a"), Var("b"))))
        plan = compile_plan(core, JoinStrategy.MSJ, base_vars=BASE)
        assert isinstance(plan, WhereNode)
        assert plan.body_free == {"a", "b"}


class TestPlanFree:
    def test_var(self):
        assert plan_free(VarNode("x")) == {"x"}

    def test_let_binds(self):
        plan = LetNode("y", VarNode("x"), FnNode("concat",
                                                 (VarNode("y"), VarNode("z"))))
        assert plan_free(plan) == {"x", "z"}

    def test_joinfor_hides_base_reads(self):
        plan = JoinForNode(
            var="y",
            source=VarNode("doc"),
            key_outer=VarNode("x"),
            key_inner=VarNode("y"),
            body=VarNode("y"),
        )
        assert plan_free(plan) == {"x"}


class TestExplain:
    def test_explain_mentions_strategies(self):
        from repro.xmark.queries import Q8
        core, docs = lower_query(parse_xquery(Q8))
        nlj_text = explain_plan(compile_plan(core, JoinStrategy.NLJ,
                                             base_vars=docs.values()))
        msj_text = explain_plan(compile_plan(core, JoinStrategy.MSJ,
                                             base_vars=docs.values()))
        assert "nested-loop join" in nlj_text
        assert "structural merge join" in msj_text

    def test_explain_covers_conditions(self):
        core = Where(And(Empty(Var("a")), Not(Empty(Var("b")))), Var("a"))
        text = explain_plan(compile_plan(core, JoinStrategy.MSJ))
        assert "And" in text and "Not" in text and "Empty" in text
