"""Tests for plan profiling (EXPLAIN ANALYZE)."""

import pytest

from repro.api import compile_xquery
from repro.compiler.plan import JoinForNode, JoinStrategy, iter_plan
from repro.engine.profile import profile_plan
from repro.xmark.queries import FIGURE1_SAMPLE, Q8
from repro.xml.text_parser import parse_document
from repro.xquery.lowering import document_forest


@pytest.fixture(scope="module")
def q8_profile():
    compiled = compile_xquery(Q8)
    document = parse_document(FIGURE1_SAMPLE)
    bindings = {var: document_forest(document)
                for var in compiled.documents.values()}
    plan = compiled.plan(JoinStrategy.MSJ)
    return plan, profile_plan(plan, bindings)


class TestProfileData:
    def test_result_is_correct(self, q8_profile):
        _plan, profile = q8_profile
        from repro.xml.serializer import forest_to_xml
        assert forest_to_xml(profile.result) == \
            '<item person="Cong Rosca">1</item>'

    def test_total_time_positive(self, q8_profile):
        _plan, profile = q8_profile
        assert profile.total_seconds > 0

    def test_every_executed_node_profiled(self, q8_profile):
        plan, profile = q8_profile
        root_data = profile.nodes.get(id(plan))
        assert root_data is not None
        assert root_data.calls == 1
        assert root_data.output_tuples > 0

    def test_join_node_measured(self, q8_profile):
        plan, profile = q8_profile
        join = next(node for node in iter_plan(plan)
                    if isinstance(node, JoinForNode))
        data = profile.nodes[id(join)]
        assert data.calls == 1
        assert data.output_width > 0

    def test_inclusive_times_nest(self, q8_profile):
        plan, profile = q8_profile
        root_seconds = profile.nodes[id(plan)].seconds
        for node in iter_plan(plan):
            data = profile.nodes.get(id(node))
            if data is not None:
                assert data.seconds <= root_seconds + 1e-9


class TestRendering:
    def test_render_contains_annotations(self, q8_profile):
        _plan, profile = q8_profile
        text = profile.render()
        assert "tuples" in text
        assert "ms" in text
        assert "total:" in text

    def test_render_keeps_plan_structure(self, q8_profile):
        _plan, profile = q8_profile
        text = profile.render()
        assert "JoinFor $t" in text
        assert "Fn:select" in text

    def test_annotations_on_marker_lines_only(self, q8_profile):
        _plan, profile = q8_profile
        for line in profile.render().splitlines():
            if "[" in line and "tuples" in line:
                stripped = line.strip()
                assert stripped.startswith(
                    ("Var(", "Fn:", "Let ", "Where", "For ", "JoinFor "))
