"""Per-cell benchmark execution with the paper's failure semantics.

Every cell runs in a forked child process so that runaway quadratic plans
can be killed at the timeout — the analogue of the paper's two-hour CPU
limit ("DNF").  Simulated memory exhaustion in the naive baseline surfaces
as "IM", and dynamic-interval width overflow on the 64-bit SQLite backend
as "OV" (a failure mode Section 4.3 predicts for fixed-width integers).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.bench.systems import execute_cell

#: Cell outcome codes (matching the paper's table markers).
OK = "ok"
DNF = "DNF"  # did not finish within the time budget
IM = "IM"    # insufficient memory (simulated budget exhausted)
OV = "OV"    # dynamic-interval width overflow (fixed-width backend)
ERROR = "error"


@dataclass
class CellResult:
    """Outcome of one (system, query, scale) benchmark cell."""

    system: str
    query: str
    scale: float
    status: str
    seconds: float | None = None
    detail: str = ""
    breakdown: Mapping[str, float] | None = None
    result_size: int | None = None
    document_nodes: int | None = None
    #: Untimed setup cost: backend document load + runner construction.
    prepare_seconds: float | None = None
    #: Wall seconds per lifecycle phase (compile / prepare / execute).
    phases: Mapping[str, float] | None = None

    @property
    def display(self) -> str:
        """The table-cell rendering: seconds, or the failure marker."""
        if self.status == OK and self.seconds is not None:
            if self.seconds >= 100:
                return f"{self.seconds:.0f}"
            if self.seconds >= 10:
                return f"{self.seconds:.1f}"
            return f"{self.seconds:.2f}"
        return self.status


def _cell_context(start_method: str | None = None):
    """The multiprocessing context for benchmark cells.

    ``fork`` when the platform offers it (children inherit the memoized
    document cache copy-on-write); ``spawn`` otherwise — macOS, Windows,
    and the Python ≥ 3.14 default — where the parent ships the generated
    document over the pipe instead (see :func:`run_cell`).
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _cell_worker(connection, system: str, query: str, scale: float,
                 seed: int, memory_budget: int | None,
                 collect_breakdown: bool, document=None) -> None:
    """Child-process entry point: run the cell, ship the outcome back."""
    # Imports resolved in the child (inherited under fork, re-imported
    # under spawn); classify failures by name so the parent never needs
    # to unpickle library exception types.
    try:
        if document is not None:
            # Spawn mode: no inherited cache — seed it with the document
            # the parent generated, so generation stays outside the
            # child's timed budget exactly as under fork.
            from repro.xmark.generator import seed_document_cache

            seed_document_cache(scale, document, seed=seed)
        measurements = execute_cell(
            system, query, scale, seed=seed, memory_budget=memory_budget,
            collect_breakdown=collect_breakdown,
        )
        connection.send(("ok", measurements))
    except Exception as error:  # noqa: BLE001 — classified and reported
        kind = type(error).__name__
        if kind == "MemoryLimitExceeded" or isinstance(error, MemoryError):
            connection.send(("im", str(error)))
        elif kind == "WidthOverflowError":
            connection.send(("ov", str(error)))
        else:
            connection.send(("error", f"{kind}: {error}\n"
                                      f"{traceback.format_exc()}"))
    finally:
        connection.close()


def run_cell(system: str, query: str, scale: float,
             timeout: float = 60.0, seed: int = 42,
             memory_budget: int | None = None,
             collect_breakdown: bool = False,
             start_method: str | None = None) -> CellResult:
    """Run one cell under a wall-clock budget; classify the outcome.

    The document is generated (memoized) in the parent *before* the
    child starts, so the budget covers evaluation only — matching the
    paper's exclusion of document load time.  Under ``fork`` the child
    inherits the cache copy-on-write; under ``spawn`` (macOS/Windows,
    or ``start_method="spawn"``) the document is pickled to the child
    explicitly instead.
    """
    from repro.xmark.generator import cached_document

    document = cached_document(scale, seed=seed)
    context = _cell_context(start_method)
    shipped = document if context.get_start_method() != "fork" else None
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_cell_worker,
        args=(child_conn, system, query, scale, seed, memory_budget,
              collect_breakdown, shipped),
    )
    process.start()
    child_conn.close()
    outcome: tuple[str, Any] | None = None
    crashed = False
    try:
        try:
            if parent_conn.poll(timeout):
                outcome = parent_conn.recv()
        except EOFError:
            # Child died before sending (hard crash, OOM kill): classified
            # below as an error rather than leaking up as a pipe failure.
            crashed = True
        process.join(timeout=1.0)
        if process.is_alive():
            # Escalate: SIGTERM first, SIGKILL if the child ignores it
            # (e.g. stuck in uninterruptible C code), so no zombie ever
            # outlives the harness.
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join()
    finally:
        parent_conn.close()

    if outcome is None and crashed:
        return CellResult(system, query, scale, ERROR,
                          detail=f"worker died with exit code "
                                 f"{process.exitcode} before reporting")
    if outcome is None:
        return CellResult(system, query, scale, DNF,
                          detail=f"exceeded {timeout:.0f}s budget")
    kind, payload = outcome
    if kind == "ok":
        return CellResult(
            system, query, scale, OK,
            seconds=payload["seconds"],
            breakdown=payload.get("breakdown"),
            result_size=payload.get("result_size"),
            document_nodes=payload.get("document_nodes"),
            prepare_seconds=payload.get("prepare_seconds"),
            phases=payload.get("phases"),
        )
    if kind == "im":
        return CellResult(system, query, scale, IM, detail=payload)
    if kind == "ov":
        return CellResult(system, query, scale, OV, detail=payload)
    return CellResult(system, query, scale, ERROR, detail=payload)


#: Default batch for the concurrent-throughput mode: cheap, independent
#: XMark path queries (the expensive join queries Q8/Q9 would swamp the
#: batch).  All run on the relational backends, whose C-side execution
#: releases the GIL — the workload where worker threads actually overlap.
CONCURRENCY_QUERIES: tuple[str, ...] = (
    'document("auction.xml")/site/people/person/name',
    'document("auction.xml")/site/open_auctions/open_auction'
    '/bidder/increase',
    'document("auction.xml")/site/closed_auctions/closed_auction/price',
    'document("auction.xml")/site/regions/europe/item/name',
)


@dataclass
class ThroughputResult:
    """Serial vs concurrent wall-clock for one batch of queries."""

    backend: str
    scale: float
    workers: int
    batch_size: int
    serial_seconds: float
    concurrent_seconds: float

    @property
    def speedup(self) -> float:
        """Serial time over concurrent time (>1 means run_many wins)."""
        if self.concurrent_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.concurrent_seconds

    @property
    def display(self) -> str:
        return (f"{self.backend} sf={self.scale} x{self.batch_size} "
                f"queries: serial {self.serial_seconds:.2f}s, "
                f"{self.workers} workers {self.concurrent_seconds:.2f}s "
                f"({self.speedup:.2f}x)")


def measure_concurrent_throughput(
        scale: float = 0.001,
        backend: str = "sqlite",
        workers: int = 8,
        repeat: int = 4,
        seed: int = 42,
        queries: Sequence[str] | None = None) -> ThroughputResult:
    """Compare a serial loop against ``run_many`` on one warm session.

    The batch is ``queries`` (default :data:`CONCURRENCY_QUERIES`)
    repeated ``repeat`` times.  Both measurements run against fully
    warmed state — compiled queries, shredded documents, and the worker
    pool's per-thread connections — so the timed difference is purely
    scheduling, the same way :func:`run_cell` excludes document loading.
    Speedup scales with available cores: the relational backends execute
    outside the GIL, so on a multi-core host 8 workers on independent
    queries exceed 2x serial throughput; a single-core host pins the
    ratio near 1.
    """
    from repro.session import XQuerySession
    from repro.xmark.generator import cached_document

    batch = list(queries if queries is not None else CONCURRENCY_QUERIES)
    batch *= repeat
    document = cached_document(scale, seed=seed)
    with XQuerySession(backend=backend) as session:
        session.add_document("auction.xml", document)
        for query in set(batch):  # warm compile cache + prepared documents
            session.run(query)
        session.run_many(batch, max_workers=workers)  # warm the pool
        start = time.perf_counter()
        for query in batch:
            session.run(query)
        serial = time.perf_counter() - start
        start = time.perf_counter()
        session.run_many(batch, max_workers=workers)
        concurrent = time.perf_counter() - start
    return ThroughputResult(backend=backend, scale=scale, workers=workers,
                            batch_size=len(batch), serial_seconds=serial,
                            concurrent_seconds=concurrent)


@dataclass
class SweepResult:
    """All cells of one experiment (query × systems × scales)."""

    query: str
    scales: list[float]
    systems: list[str]
    cells: dict[tuple[str, float], CellResult] = field(default_factory=dict)

    def cell(self, system: str, scale: float) -> CellResult:
        return self.cells[(system, scale)]


def sweep(query: str, systems: Iterable[str], scales: Iterable[float],
          timeout: float = 60.0, seed: int = 42,
          memory_budget: int | None = None,
          collect_breakdown: bool = False,
          skip_after_failure: bool = True,
          verbose: bool = False) -> SweepResult:
    """Run the full (system × scale) grid for one query.

    With ``skip_after_failure`` (default), once a system DNFs/IMs at some
    scale, larger scales are marked with the same status without running —
    the paper's tables have the same monotone structure, and it keeps
    quadratic sweeps affordable.
    """
    systems = list(systems)
    scales = sorted(scales)
    result = SweepResult(query, scales, systems)
    for system in systems:
        failed_status: str | None = None
        for scale in scales:
            if failed_status is not None and skip_after_failure:
                result.cells[(system, scale)] = CellResult(
                    system, query, scale, failed_status,
                    detail="skipped after smaller-scale failure",
                )
                continue
            cell = run_cell(system, query, scale, timeout=timeout, seed=seed,
                            memory_budget=memory_budget,
                            collect_breakdown=collect_breakdown)
            result.cells[(system, scale)] = cell
            if verbose:
                print(f"  {query} {system} sf={scale}: {cell.display}")
            if cell.status in (DNF, IM, OV):
                failed_status = cell.status
    return result
