"""Per-operator SQL templates (Section 4.1, lifted over environments, 4.2.1).

Each XFn has a template builder producing the SQL for one CTE that computes
``T_XFn(e1,…,ek)`` from the argument CTEs, *already lifted* over the
sequence of environments: instead of extracting each environment's local
encoding, applying the single-forest template, and shifting back (the
paper's three-layer presentation), the builders fold the shift arithmetic
into the template using integer division — a tuple with left endpoint ``l``
in a relation of width ``w`` belongs to environment ``l / w``, so

    l_out  =  l_in + (l_in / w_in) · (w_out − w_in) + local_offset

re-blocks a tuple from input width to output width in one expression.
SQLite evaluates ``x / 0`` as NULL, so zero-width (provably empty) inputs
are simply skipped by the builders that would divide by them.

Builders return :class:`TemplateResult`: the SQL text of the main CTE, the
output width, and any helper CTEs (e.g. DFS-sequence views for ``sort`` /
``distinct``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import TranslationError
from repro.sql.labels import (
    is_element_predicate,
    is_text_predicate,
    sql_string,
)
from repro.sql.structural import (
    root_sequence_sql,
    roots_id_sql,
    tree_equal_predicate,
    tree_less_predicate,
)

#: Allocate a fresh CTE name with the given hint.
Namer = Callable[[str], str]


@dataclass(frozen=True)
class Rel:
    """A translated expression: the CTE (or table) holding it plus its width."""

    table: str
    width: int


@dataclass
class TemplateResult:
    """Output of a template builder."""

    sql: str
    width: int
    #: Helper CTEs as (name, sql), to be emitted before the main CTE.
    helpers: list[tuple[str, str]] = field(default_factory=list)


_EMPTY_SQL = "SELECT NULL AS s, NULL AS l, NULL AS r WHERE 0"


def _is_root(table: str, width: int, alias: str) -> str:
    """Predicate: ``alias`` is a root within its environment block."""
    return (
        f"NOT EXISTS (SELECT 1 FROM {table} anc\n"
        f"             WHERE anc.l < {alias}.l AND {alias}.r < anc.r\n"
        f"               AND anc.l / {width} = {alias}.l / {width})"
    )


def build_template(fn: str, params: Mapping[str, str], args: list[Rel],
                   index: str, namer: Namer) -> TemplateResult:
    """Build the SQL template for ``fn`` over already-translated arguments."""
    try:
        builder = _BUILDERS[fn]
    except KeyError:
        raise TranslationError(f"no SQL template for XFn {fn!r}") from None
    return builder(params, args, index, namer)


def _build_empty_forest(params, args, index, namer) -> TemplateResult:
    return TemplateResult(_EMPTY_SQL, 0)


def _build_text_const(params, args, index, namer) -> TemplateResult:
    literal = sql_string(params["value"])
    sql = (
        f"SELECT {literal} AS s, idx.i * 2 AS l, idx.i * 2 + 1 AS r\n"
        f"  FROM {index} idx"
    )
    return TemplateResult(sql, 2)


def _build_xnode(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    label = sql_string(params["label"])
    width = arg.width + 2
    root_branch = (
        f"SELECT {label} AS s, idx.i * {width} AS l,\n"
        f"       idx.i * {width} + {width - 1} AS r\n"
        f"  FROM {index} idx"
    )
    if arg.width == 0:
        return TemplateResult(root_branch, width)
    delta = width - arg.width
    content_branch = (
        f"SELECT s, l + (l / {arg.width}) * {delta} + 1 AS l,\n"
        f"       r + (l / {arg.width}) * {delta} + 1 AS r\n"
        f"  FROM {arg.table}"
    )
    return TemplateResult(f"{root_branch}\nUNION ALL\n{content_branch}", width)


def _build_concat(params, args, index, namer) -> TemplateResult:
    left, right = args
    width = left.width + right.width
    branches: list[str] = []
    if left.width > 0:
        delta = width - left.width
        branches.append(
            f"SELECT s, l + (l / {left.width}) * {delta} AS l,\n"
            f"       r + (l / {left.width}) * {delta} AS r\n"
            f"  FROM {left.table}"
        )
    if right.width > 0:
        delta = width - right.width
        branches.append(
            f"SELECT s, l + (l / {right.width}) * {delta} + {left.width} AS l,\n"
            f"       r + (l / {right.width}) * {delta} + {left.width} AS r\n"
            f"  FROM {right.table}"
        )
    if not branches:
        return TemplateResult(_EMPTY_SQL, 0)
    return TemplateResult("\nUNION ALL\n".join(branches), width)


def _build_roots(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    sql = (
        f"SELECT u.s, u.l, u.r FROM {arg.table} u\n"
        f" WHERE {_is_root(arg.table, arg.width, 'u')}"
    )
    return TemplateResult(sql, arg.width)


def _build_children(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    sql = (
        f"SELECT u.s, u.l, u.r FROM {arg.table} u\n"
        f" WHERE EXISTS (SELECT 1 FROM {arg.table} anc\n"
        f"                WHERE anc.l < u.l AND u.r < anc.r\n"
        f"                  AND anc.l / {arg.width} = u.l / {arg.width})"
    )
    return TemplateResult(sql, arg.width)


def _root_filter_template(arg: Rel, root_predicate: str) -> str:
    """Keep whole trees whose root satisfies ``root_predicate`` (alias rt)."""
    width = arg.width
    return (
        f"SELECT u.s, u.l, u.r FROM {arg.table} u\n"
        f" WHERE EXISTS (\n"
        f"   SELECT 1 FROM {arg.table} rt\n"
        f"    WHERE rt.l <= u.l AND u.r <= rt.r\n"
        f"      AND rt.l / {width} = u.l / {width}\n"
        f"      AND {root_predicate}\n"
        f"      AND {_is_root(arg.table, width, 'rt')})"
    )


def _build_select(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    predicate = f"rt.s = {sql_string(params['label'])}"
    return TemplateResult(_root_filter_template(arg, predicate), arg.width)


def _build_textnodes(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    return TemplateResult(
        _root_filter_template(arg, is_text_predicate("rt.s")), arg.width
    )


def _build_elementnodes(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    return TemplateResult(
        _root_filter_template(arg, is_element_predicate("rt.s")), arg.width
    )


def _build_head(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    width = arg.width
    predicate = (
        f"NOT EXISTS (SELECT 1 FROM {arg.table} fr\n"
        f"             WHERE fr.l < rt.l AND fr.l / {width} = rt.l / {width}\n"
        f"               AND {_is_root(arg.table, width, 'fr')})"
    )
    return TemplateResult(_root_filter_template(arg, predicate), width)


def _build_tail(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    width = arg.width
    predicate = (
        f"EXISTS (SELECT 1 FROM {arg.table} fr\n"
        f"         WHERE fr.l < rt.l AND fr.l / {width} = rt.l / {width}\n"
        f"           AND {_is_root(arg.table, width, 'fr')})"
    )
    return TemplateResult(_root_filter_template(arg, predicate), width)


def _build_reverse(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    width = arg.width
    # Local reversal: a root spanning local [a, b] moves to [w-1-b, w-1-a],
    # and its descendants shift with it; in global coordinates the shift is
    # (w - 1 - r.r - r.l + 2·i·w) with i = l / w.
    shift = f"{width - 1} - rt.r - rt.l + 2 * (u.l / {width}) * {width}"
    sql = (
        f"SELECT u.s, u.l + {shift} AS l, u.r + {shift} AS r\n"
        f"  FROM {arg.table} u\n"
        f"  JOIN {arg.table} rt ON rt.l <= u.l AND u.r <= rt.r\n"
        f"   AND rt.l / {width} = u.l / {width}\n"
        f" WHERE {_is_root(arg.table, width, 'rt')}"
    )
    return TemplateResult(sql, width)


def _build_subtrees_dfs(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    win = arg.width
    wout = win * win
    # The copy rooted at node v is placed at block offset (v.l mod w_in)·w_in
    # inside the (l/w_in)-th output block; nodes keep their offset from v.
    base = f"(u.l / {win}) * {wout} + (v.l - (u.l / {win}) * {win}) * {win}"
    sql = (
        f"SELECT u.s, {base} + (u.l - v.l) AS l, {base} + (u.r - v.l) AS r\n"
        f"  FROM {arg.table} u\n"
        f"  JOIN {arg.table} v ON v.l <= u.l AND u.r <= v.r\n"
        f"   AND v.l / {win} = u.l / {win}"
    )
    return TemplateResult(sql, wout)


def _build_count(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        sql = (
            f"SELECT '0' AS s, idx.i * 2 AS l, idx.i * 2 + 1 AS r\n"
            f"  FROM {index} idx"
        )
        return TemplateResult(sql, 2)
    width = arg.width
    count_expr = (
        f"(SELECT COUNT(*) FROM {arg.table} x\n"
        f"  WHERE x.l / {width} = idx.i\n"
        f"    AND {_is_root(arg.table, width, 'x')})"
    )
    sql = (
        f"SELECT CAST({count_expr} AS TEXT) AS s,\n"
        f"       idx.i * 2 AS l, idx.i * 2 + 1 AS r\n"
        f"  FROM {index} idx"
    )
    return TemplateResult(sql, 2)


def _build_data(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    width = arg.width
    # Keep text roots, plus text children of non-text roots; descendants of
    # kept tuples are dropped, so results decode as childless text nodes.
    depth_expr = (
        f"(SELECT COUNT(*) FROM {arg.table} anc\n"
        f"  WHERE anc.l < u.l AND u.r < anc.r\n"
        f"    AND anc.l / {width} = u.l / {width})"
    )
    text_ancestor = (
        f"EXISTS (SELECT 1 FROM {arg.table} anc\n"
        f"         WHERE anc.l < u.l AND u.r < anc.r\n"
        f"           AND anc.l / {width} = u.l / {width}\n"
        f"           AND {is_text_predicate('anc.s')})"
    )
    sql = (
        f"SELECT u.s, u.l, u.r FROM {arg.table} u\n"
        f" WHERE {is_text_predicate('u.s')}\n"
        f"   AND ({depth_expr} = 0\n"
        f"        OR ({depth_expr} = 1 AND NOT {text_ancestor}))"
    )
    return TemplateResult(sql, width)


def _build_string_fn(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        sql = (
            f"SELECT '' AS s, idx.i * 2 AS l, idx.i * 2 + 1 AS r\n"
            f"  FROM {index} idx"
        )
        return TemplateResult(sql, 2)
    width = arg.width
    # GROUP_CONCAT over an ORDER BY subquery: SQLite feeds the aggregate in
    # the subquery's order (documented-as-arbitrary but stable in practice
    # and pinned by the test suite).
    concat_expr = (
        f"COALESCE((SELECT GROUP_CONCAT(x.s, '') FROM\n"
        f"   (SELECT t.s AS s FROM {arg.table} t\n"
        f"     WHERE t.l / {width} = idx.i AND {is_text_predicate('t.s')}\n"
        f"     ORDER BY t.l) x), '')"
    )
    sql = (
        f"SELECT {concat_expr} AS s, idx.i * 2 AS l, idx.i * 2 + 1 AS r\n"
        f"  FROM {index} idx"
    )
    return TemplateResult(sql, 2)


def _build_distinct(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    width = arg.width
    seq = namer("rseq")
    helpers = [(seq, root_sequence_sql(arg.table, width))]
    equal_earlier = tree_equal_predicate(seq, seq, "eb.l", "rt.l")
    predicate = (
        f"NOT EXISTS (SELECT 1 FROM {arg.table} eb\n"
        f"             WHERE eb.l < rt.l AND eb.l / {width} = rt.l / {width}\n"
        f"               AND {_is_root(arg.table, width, 'eb')}\n"
        f"               AND {equal_earlier})"
    )
    return TemplateResult(_root_filter_template(arg, predicate), width, helpers)


def _build_sort(params, args, index, namer) -> TemplateResult:
    (arg,) = args
    if arg.width == 0:
        return TemplateResult(_EMPTY_SQL, 0)
    win = arg.width
    wout = win * win
    seq = namer("rseq")
    roots = namer("rids")
    rank = namer("rank")
    less = tree_less_predicate(seq, seq, "b.root", "a.root")
    equal = tree_equal_predicate(seq, seq, "b.root", "a.root")
    rank_sql = (
        f"SELECT a.env AS env, a.root AS root, a.l AS l, a.r AS r,\n"
        f"       ((SELECT COUNT(*) FROM {roots} b\n"
        f"          WHERE b.env = a.env AND {less})\n"
        f"        + (SELECT COUNT(*) FROM {roots} b\n"
        f"            WHERE b.env = a.env AND b.root < a.root AND {equal})\n"
        f"       ) AS rnk\n"
        f"  FROM {roots} a"
    )
    helpers = [
        (seq, root_sequence_sql(arg.table, win)),
        (roots, roots_id_sql(arg.table, win)),
        (rank, rank_sql),
    ]
    # Tree ranked k in environment i lands at block offset k·w_in inside the
    # i-th output block of width w_in²; nodes keep their offset from the root.
    base = f"(u.l / {win}) * {wout} + k.rnk * {win}"
    sql = (
        f"SELECT u.s, {base} + (u.l - k.root) AS l, {base} + (u.r - k.root) AS r\n"
        f"  FROM {arg.table} u\n"
        f"  JOIN {rank} k ON k.l <= u.l AND u.r <= k.r"
    )
    return TemplateResult(sql, wout, helpers)


_BUILDERS: dict[str, Callable[..., TemplateResult]] = {
    "empty_forest": _build_empty_forest,
    "text_const": _build_text_const,
    "xnode": _build_xnode,
    "concat": _build_concat,
    "roots": _build_roots,
    "children": _build_children,
    "select": _build_select,
    "textnodes": _build_textnodes,
    "elementnodes": _build_elementnodes,
    "head": _build_head,
    "tail": _build_tail,
    "reverse": _build_reverse,
    "subtrees_dfs": _build_subtrees_dfs,
    "count": _build_count,
    "data": _build_data,
    "string_fn": _build_string_fn,
    "distinct": _build_distinct,
    "sort": _build_sort,
}
