"""Compile core expressions to DI-engine physical plans.

``compile_plan(expr, strategy, base_vars)`` walks the core AST:

* under :attr:`JoinStrategy.NLJ` every ``for`` becomes a naive
  :class:`~repro.compiler.plan.ForNode` expansion — the nested-loop plans
  the paper's competitors are limited to;
* under :attr:`JoinStrategy.MSJ` each ``for`` is first offered to the
  Section 5 decorrelation (:mod:`repro.compiler.decorrelate`); matches
  become :class:`~repro.compiler.plan.JoinForNode` merge joins, the rest
  fall back to naive expansion.

After compilation the planner computes, bottom-up, the set of outer
variables each iteration actually needs (``required_outer``), so that
environment expansion copies exactly the bindings the body reads —
``JoinForNode`` sources and inner keys read the base environment and are
excluded, which is where the asymptotic savings come from.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PlanError
from repro.compiler import decorrelate
from repro.compiler.plan import (
    AndCond,
    CondPlan,
    EmptyCond,
    EqualCond,
    FnNode,
    ForNode,
    JoinForNode,
    JoinStrategy,
    LessCond,
    LetNode,
    NotCond,
    OrCond,
    PlanNode,
    SomeEqualCond,
    VarNode,
    WhereNode,
)
from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
    free_variables,
)


def compile_plan(expr: CoreExpr, strategy: JoinStrategy = JoinStrategy.MSJ,
                 base_vars: Iterable[str] = (),
                 decorrelate_loops: bool = True,
                 match_fn=None) -> PlanNode:
    """Compile ``expr`` for the given join strategy.

    ``base_vars`` are the variables bound in the initial environment
    (document variables); they gate which loop sources are eligible for
    base-environment evaluation.  ``decorrelate_loops=False`` disables the
    Section 5 rewrite entirely (every loop becomes the naive environment
    expansion, which duplicates outer bindings per iteration) — the
    ablation knob behind ``benchmarks/bench_ablation_decorrelation.py``.
    ``match_fn`` overrides the decorrelation matcher (same signature as
    :func:`repro.compiler.decorrelate.match_join`); the staged pipeline
    uses it to time the ``decorrelate`` pass without changing behaviour.
    """
    compiler = _Compiler(strategy, frozenset(base_vars), decorrelate_loops,
                         match_fn=match_fn)
    return compiler.compile(expr)


class _Compiler:
    def __init__(self, strategy: JoinStrategy, base_vars: frozenset[str],
                 decorrelate_loops: bool = True, match_fn=None):
        self.strategy = strategy
        self.base_vars = base_vars
        self.decorrelate_loops = decorrelate_loops
        self.match_fn = match_fn if match_fn is not None else decorrelate.match_join

    def compile(self, expr: CoreExpr) -> PlanNode:
        if isinstance(expr, Var):
            return VarNode(expr.name)
        if isinstance(expr, FnApp):
            args = tuple(self.compile(arg) for arg in expr.args)
            return FnNode(expr.fn, args, expr.params)
        if isinstance(expr, Let):
            return LetNode(expr.var, self.compile(expr.value),
                           self.compile(expr.body))
        if isinstance(expr, Where):
            return WhereNode(self.compile_condition(expr.condition),
                             self.compile(expr.body),
                             free_variables(expr.body))
        if isinstance(expr, For):
            return self.compile_for(expr)
        raise PlanError(f"cannot compile {type(expr).__name__}")

    def compile_for(self, loop: For) -> PlanNode:
        # Both strategies decorrelate: the paper's Q8 plans are identical
        # except for the join *operator* (nested-loop vs merge-sort pair
        # matching), so the path-extraction work is shared and only the
        # join differs.  Loops the rewrite cannot handle fall back to the
        # naive environment expansion under either strategy.
        if self.decorrelate_loops:
            match = self.match_fn(loop, self.base_vars)
            if match is not None:
                return self._compile_join(match)
        source = self.compile(loop.source)
        body = self.compile(loop.body)
        required = plan_free(body) - {loop.var}
        return ForNode(loop.var, source, body, frozenset(required))

    def _compile_join(self, match: decorrelate.JoinMatch) -> JoinForNode:
        source = self.compile(match.source)
        key_outer = self.compile(match.key_outer)
        key_inner = self.compile(match.key_inner)
        residual = (self.compile_condition(match.residual)
                    if match.residual is not None else None)
        inner: CoreExpr = match.return_expr
        if match.inner_residual is not None:
            inner = Where(match.inner_residual, inner)
        for var, value in reversed(match.let_spine):
            inner = Let(var, value, inner)
        body = self.compile(inner)
        required = plan_free(body) | plan_free(key_outer)
        if residual is not None:
            required |= cond_free(residual)
        required -= {match.var}
        return JoinForNode(match.var, source, key_outer, key_inner, body,
                           residual, frozenset(required), match.existential,
                           self.strategy)

    def compile_condition(self, condition: Condition) -> CondPlan:
        if isinstance(condition, Empty):
            return EmptyCond(self.compile(condition.expr))
        if isinstance(condition, Equal):
            return EqualCond(self.compile(condition.left),
                             self.compile(condition.right))
        if isinstance(condition, SomeEqual):
            return SomeEqualCond(self.compile(condition.left),
                                 self.compile(condition.right))
        if isinstance(condition, Less):
            return LessCond(self.compile(condition.left),
                            self.compile(condition.right))
        if isinstance(condition, Not):
            return NotCond(self.compile_condition(condition.condition))
        if isinstance(condition, And):
            return AndCond(self.compile_condition(condition.left),
                           self.compile_condition(condition.right))
        if isinstance(condition, Or):
            return OrCond(self.compile_condition(condition.left),
                          self.compile_condition(condition.right))
        raise PlanError(f"cannot compile condition {type(condition).__name__}")


def plan_free(node: PlanNode) -> frozenset[str]:
    """Environment variables a plan reads from its *enclosing* sequence.

    ``JoinForNode`` sources and inner keys are read from the base
    environment, so their variables do not count — that exclusion is what
    lets the enclosing expansion skip copying the documents.
    """
    if isinstance(node, VarNode):
        return frozenset((node.name,))
    if isinstance(node, FnNode):
        result: frozenset[str] = frozenset()
        for arg in node.args:
            result |= plan_free(arg)
        return result
    if isinstance(node, LetNode):
        return plan_free(node.value) | (plan_free(node.body) - {node.var})
    if isinstance(node, WhereNode):
        return cond_free(node.condition) | plan_free(node.body)
    if isinstance(node, ForNode):
        return plan_free(node.source) | (plan_free(node.body) - {node.var})
    if isinstance(node, JoinForNode):
        result = plan_free(node.key_outer) | (plan_free(node.body) - {node.var})
        if node.residual is not None:
            result |= cond_free(node.residual) - {node.var}
        return result
    raise PlanError(f"unknown plan node {type(node).__name__}")


def cond_free(condition: CondPlan) -> frozenset[str]:
    """Environment variables a condition plan reads."""
    if isinstance(condition, EmptyCond):
        return plan_free(condition.expr)
    if isinstance(condition, (EqualCond, SomeEqualCond, LessCond)):
        return plan_free(condition.left) | plan_free(condition.right)
    if isinstance(condition, NotCond):
        return cond_free(condition.condition)
    if isinstance(condition, (AndCond, OrCond)):
        return cond_free(condition.left) | cond_free(condition.right)
    raise PlanError(f"unknown condition plan {type(condition).__name__}")


def explain_plan(node: PlanNode, indent: int = 0) -> str:
    """A readable multi-line rendering of a physical plan."""
    pad = "  " * indent
    if isinstance(node, VarNode):
        return f"{pad}Var(${node.name})"
    if isinstance(node, FnNode):
        params = ", ".join(f"{k}={v!r}" for k, v in node.params)
        header = f"{pad}Fn:{node.fn}" + (f"[{params}]" if params else "")
        if not node.args:
            return header
        children = "\n".join(explain_plan(arg, indent + 1) for arg in node.args)
        return f"{header}\n{children}"
    if isinstance(node, LetNode):
        return (f"{pad}Let ${node.var}\n"
                f"{explain_plan(node.value, indent + 1)}\n"
                f"{explain_plan(node.body, indent + 1)}")
    if isinstance(node, WhereNode):
        return (f"{pad}Where\n"
                f"{_explain_cond(node.condition, indent + 1)}\n"
                f"{explain_plan(node.body, indent + 1)}")
    if isinstance(node, ForNode):
        required = ", ".join(sorted(node.required_outer)) or "-"
        return (f"{pad}For ${node.var} [nested-loop expansion; copies: {required}]\n"
                f"{explain_plan(node.source, indent + 1)}\n"
                f"{explain_plan(node.body, indent + 1)}")
    if isinstance(node, JoinForNode):
        required = ", ".join(sorted(node.required_outer)) or "-"
        operator = ("structural merge join"
                    if node.strategy is JoinStrategy.MSJ
                    else "nested-loop join")
        lines = [
            f"{pad}JoinFor ${node.var} [{operator}; copies: {required}]",
            f"{pad}  source (base env):",
            explain_plan(node.source, indent + 2),
            f"{pad}  key (outer):",
            explain_plan(node.key_outer, indent + 2),
            f"{pad}  key (inner):",
            explain_plan(node.key_inner, indent + 2),
        ]
        if node.residual is not None:
            lines.append(f"{pad}  residual:")
            lines.append(_explain_cond(node.residual, indent + 2))
        lines.append(f"{pad}  body:")
        lines.append(explain_plan(node.body, indent + 2))
        return "\n".join(lines)
    raise PlanError(f"unknown plan node {type(node).__name__}")


def _explain_cond(condition: CondPlan, indent: int) -> str:
    pad = "  " * indent
    if isinstance(condition, EmptyCond):
        return f"{pad}Empty\n{explain_plan(condition.expr, indent + 1)}"
    if isinstance(condition, EqualCond):
        return (f"{pad}Equal\n{explain_plan(condition.left, indent + 1)}\n"
                f"{explain_plan(condition.right, indent + 1)}")
    if isinstance(condition, SomeEqualCond):
        return (f"{pad}SomeEqual\n{explain_plan(condition.left, indent + 1)}\n"
                f"{explain_plan(condition.right, indent + 1)}")
    if isinstance(condition, LessCond):
        return (f"{pad}Less\n{explain_plan(condition.left, indent + 1)}\n"
                f"{explain_plan(condition.right, indent + 1)}")
    if isinstance(condition, NotCond):
        return f"{pad}Not\n{_explain_cond(condition.condition, indent + 1)}"
    if isinstance(condition, AndCond):
        return (f"{pad}And\n{_explain_cond(condition.left, indent + 1)}\n"
                f"{_explain_cond(condition.right, indent + 1)}")
    if isinstance(condition, OrCond):
        return (f"{pad}Or\n{_explain_cond(condition.left, indent + 1)}\n"
                f"{_explain_cond(condition.right, indent + 1)}")
    raise PlanError(f"unknown condition plan {type(condition).__name__}")
