"""XMark Q13: reconstructing document fragments (Section 6.1).

Q13 rebuilds every Australian item as a new element carrying the original
(possibly large) description subtree — the paper's test of *result
construction*, where intermediate results are themselves new documents.
This example shows the dynamic-interval answer: constructed elements are
just re-blocked intervals, so construction costs stay linear.

Run with:  python examples/document_reconstruction.py
"""

import time

from repro import compile_xquery, run_xquery
from repro.xmark.generator import generate_document
from repro.xmark.queries import Q13
from repro.xml.forest import forest_size


def main() -> None:
    compiled = compile_xquery(Q13)
    print("Query (XMark Q13):")
    print(Q13)

    print(f"{'scale':>8} {'doc nodes':>10} {'result trees':>13} "
          f"{'result nodes':>13} {'engine secs':>12}")
    for scale in (0.001, 0.005, 0.01, 0.05):
        document = generate_document(scale)
        started = time.perf_counter()
        result = run_xquery(compiled, {"auction.xml": (document,)},
                            backend="engine")
        elapsed = time.perf_counter() - started
        print(f"{scale:>8g} {document.size:>10} {len(result):>13} "
              f"{forest_size(result.forest):>13} {elapsed:>12.3f}")

    # Show one reconstructed item.
    document = generate_document(0.001)
    result = run_xquery(compiled, {"auction.xml": (document,)})
    print("\nFirst reconstructed item:")
    print(result.to_xml(indent=2).split("</item>")[0] + "</item>")


if __name__ == "__main__":
    main()
