"""Engine kernel benchmark: columnar kernels vs the list-based algebra.

Writes a ``BENCH_engine.json`` trajectory file recording, on one XMark
document,

* **operators** — ops/sec for every columnar kernel against its
  list-based reference implementation (the pre-columnar operator
  algebra, kept in :mod:`repro.engine.operators` as ``_list_*``), and
* **queries** — the Figure 8 (Q13) and Figure 9 (Q8/Q9) paper queries
  run through :class:`~repro.engine.evaluator.DIEngine`, serially and as
  a concurrent ``run_many``-style batch, for both relation
  representations, and
* **planner** — the multi-join Q9 executed on the planning-off
  syntactic plan versus the cost-optimized plan (estimated-cost and
  observed-cost variants), plus cold/warm plan times through the
  stats-keyed plan cache, and
* **telemetry** — the always-on flight recorder's cost: warm
  ``session.run`` ops/sec with the recorder on versus a ``record=False``
  session, plus the recorder's own p50/p99 for each figure query (the
  < 5% overhead budget from docs/OBSERVABILITY.md, measured not
  asserted — the CI gate diffs the ratio against the baseline), and
* **overload** — admission control's costs and guarantees: warm
  no-contention overhead versus ``admission=False`` (≤ 2%), admitted
  p99 inside the default SLO under a 4× flood, and sub-millisecond
  rejection latency on a saturated controller — all three gated as
  absolute service levels by ``--check``, and
* **updates** — the O(affected-subtree) write path: single-subtree
  insert/delete latency (commit **plus first post-commit read**, so lazy
  invalidation cannot hide the full path's deferred cost) through the
  incremental delta protocol versus the full re-encode fallback on every
  delta-capable backend, a 90/10 read-write mix, and plan-cache
  retention across a small update.  ``--check`` gates the incremental
  path at ≥ 10× full re-encode and requires the plan cache to keep a
  migrated, warm-hittable plan, and
* **process_parallel** — the process tier: warm serial ``session.run``
  versus ``run_many`` on the thread tier versus ``run_many`` on the
  ``procpool`` backend (worker processes attached zero-copy to the
  shared-memory document encodings) for Q13 and Q8.  ``--check``
  requires batched process-tier throughput to beat serial — but only
  when the recording host has ≥ 2 CPUs, because a single core cannot
  express process parallelism (the section still records the numbers
  there for inspection).

The recorded ``speedup`` fields are host-independent ratios (both sides
measured back-to-back on the same machine), which is what the CI smoke
job diffs against the committed baseline::

    python -m repro.bench.engine_bench --out BENCH_engine.json
    python -m repro.bench.engine_bench --smoke --out /tmp/bench.json \
        --check BENCH_engine_smoke.json

``--check`` fails (exit 1) when any kernel or query speedup regresses
by more than ``--tolerance`` (default 25%) relative to the baseline,
with a small absolute slack so near-1.0 ratios cannot flake the build.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.api import compile_xquery
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.engine import kernels
from repro.engine import operators as ops
from repro.engine.evaluator import DIEngine
from repro.engine.relation import group_by_env
from repro.engine.structural import tree_keys
from repro.xmark.generator import cached_document
from repro.xmark.queries import DOCUMENT as XMARK_DOCUMENT, QUERIES
from repro.xml.forest import is_text_label
from repro.xquery.lowering import document_forest

#: Paper figure → query mapping (Section 6.1 / 6.2).
FIGURE_QUERIES = {"fig8_q13": "Q13", "fig9_q8": "Q8", "fig9_q9": "Q9"}

#: Join queries the cost-based planner section measures (Section 6.3's
#: multi-join Q9 is where plan choice matters most).
PLANNER_QUERIES = {"fig9_q9": "Q9"}

#: Queries the process-parallel section measures — the two figure
#: queries the acceptance gate names (Q13 path-heavy, Q8 join-heavy).
PROCESS_QUERIES = {"fig8_q13": "Q13", "fig9_q8": "Q8"}

#: Default scale — the largest seed document the suite benches against.
FULL_SCALE = 0.2
SMOKE_SCALE = 0.01
SEED = 42


def _best_seconds(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _pair(columnar: Callable[[], Any], listform: Callable[[], Any],
          repeats: int) -> dict[str, float]:
    """Ops/sec for both representations plus the columnar speedup."""
    col = _best_seconds(columnar, repeats)
    ref = _best_seconds(listform, repeats)
    return {
        "columnar_ops_per_sec": round(1.0 / col, 2),
        "list_ops_per_sec": round(1.0 / ref, 2),
        "speedup": round(ref / col, 3),
    }


def _operator_inputs(scale: float) -> dict[str, Any]:
    """Shared benchmark relations derived from the XMark document.

    ``doc`` is the single-env encoded document; ``blocked`` re-blocks the
    person trees into per-root environments — the multi-env shape the
    iteration/constructor kernels see inside FLWR loops.
    """
    document = cached_document(scale, seed=SEED)
    doc_cols, width = DIEngine.prepare_document((document,))
    people = kernels.select_children(
        kernels.select_children(doc_cols, "<people>"), "<person>")
    roots = kernels.roots(people)
    root_lefts = list(roots.l)
    blocked = kernels.expand_variable(people, width, root_lefts)
    envs = list(blocked.envs_present(width))
    small = kernels.select_children(
        kernels.select_children(doc_cols, "<regions>"), "<australia>")
    return {
        "width": width,
        "doc": doc_cols,
        "doc_list": list(doc_cols.tuples()),
        "people": people,
        "people_list": list(people.tuples()),
        "root_lefts": root_lefts,
        "blocked": blocked,
        "blocked_list": list(blocked.tuples()),
        "envs": envs,
        "small": small,
        "small_list": list(small.tuples()),
        "nodes": document.size,
    }


def bench_operators(scale: float, repeats: int) -> dict[str, dict[str, float]]:
    """Per-kernel ops/sec: columnar kernel vs ``_list_*`` reference."""
    inp = _operator_inputs(scale)
    width = inp["width"]
    doc, doc_list = inp["doc"], inp["doc_list"]
    people, people_list = inp["people"], inp["people_list"]
    blocked, blocked_list = inp["blocked"], inp["blocked_list"]
    small, small_list = inp["small"], inp["small_list"]
    envs, root_lefts = inp["envs"], inp["root_lefts"]
    moves = [(env, position) for position, env in enumerate(envs)]
    half = envs[::2]
    half_set = set(half)

    cases: dict[str, tuple[Callable[[], Any], Callable[[], Any]]] = {
        "roots": (lambda: kernels.roots(doc),
                  lambda: ops._list_roots(doc_list)),
        "children": (lambda: kernels.children(doc),
                     lambda: ops._list_children(doc_list)),
        "select_label": (
            lambda: kernels.select_label(people, "<person>"),
            lambda: ops._list_select_trees(people_list,
                                           lambda s: s == "<person>")),
        "select_children": (
            lambda: kernels.select_children(doc, "<site>"),
            lambda: ops._list_select_trees(ops._list_children(doc_list),
                                           lambda s: s == "<site>")),
        "textnode_trees": (
            lambda: kernels.textnode_trees(people),
            lambda: ops._list_select_trees(people_list, is_text_label)),
        "head": (lambda: kernels.head(blocked, width),
                 lambda: ops._list_head(blocked_list, width)),
        "tail": (lambda: kernels.tail(blocked, width),
                 lambda: ops._list_tail(blocked_list, width)),
        "data": (lambda: kernels.data(blocked, width),
                 lambda: ops._list_data(blocked_list, width)),
        "reverse": (lambda: kernels.reverse(blocked, width),
                    lambda: ops._list_reverse(blocked_list, width)),
        "subtrees_dfs": (lambda: kernels.subtrees_dfs(small, width),
                         lambda: ops._list_subtrees_dfs(small_list, width)),
        "distinct": (lambda: kernels.distinct(blocked, width),
                     lambda: ops._list_distinct(blocked_list, width)),
        "sort": (lambda: kernels.sort(blocked, width),
                 lambda: ops._list_sort(blocked_list, width)),
        "concat": (
            lambda: kernels.concat(blocked, width, blocked, width),
            lambda: ops._list_concat(blocked_list, width,
                                     blocked_list, width)),
        "xnode": (
            lambda: kernels.xnode("<item>", blocked, width, envs),
            lambda: ops._list_xnode("<item>", blocked_list, width, envs)),
        "expand_variable": (
            lambda: kernels.expand_variable(people, width, root_lefts),
            lambda: ops._list_expand_variable(people_list, width,
                                              root_lefts)),
        "gather_blocks": (
            lambda: kernels.gather_blocks(blocked, width, moves),
            lambda: ops._list_gather_blocks(blocked_list, width, moves)),
        "filter_by_index": (
            lambda: kernels.filter_by_index(blocked, width, half),
            lambda: [row for row in blocked_list
                     if row[1] // width in half_set]),
        "count_roots": (
            lambda: kernels.count_roots(blocked, width, envs),
            lambda: ops._list_count_roots(blocked_list, width, envs)),
        "string_fn": (
            lambda: kernels.string_fn(blocked, width, envs),
            lambda: ops._list_string_fn(blocked_list, width, envs)),
        "block_tree_key_sets": (
            lambda: kernels.block_tree_key_sets(blocked, width),
            lambda: {env: set(tree_keys(list(block)))
                     for env, block in group_by_env(blocked_list, width)}),
    }
    return {name: _pair(columnar, listform, repeats)
            for name, (columnar, listform) in cases.items()}


def _query_setup(query_name: str, scale: float):
    document = cached_document(scale, seed=SEED)
    compiled = compile_xquery(QUERIES[query_name])
    bindings = {var: document_forest((document,))
                for var in compiled.documents.values()}
    plan = compile_plan(compiled.core, JoinStrategy.MSJ,
                        base_vars=compiled.documents.values())
    columnar = {name: DIEngine.prepare_document(forest)
                for name, forest in bindings.items()}
    listform = {name: (list(rel.tuples()), width)
                for name, (rel, width) in columnar.items()}
    return plan, columnar, listform


def bench_queries(scale: float, repeats: int, workers: int,
                  batch: int) -> dict[str, Any]:
    """Figure 8/9 queries through the DI engine, serial and batched.

    The batch mode mirrors ``Session.run_many``: one immutable document
    encoding shared by ``workers`` pool threads, each running the plan on
    its own engine — the concurrent-serving path the backends use.
    """
    results: dict[str, Any] = {}
    for bench_name, query_name in FIGURE_QUERIES.items():
        plan, columnar, listform = _query_setup(query_name, scale)

        def serial(values):
            engine = DIEngine()
            return lambda: engine.run_plan_values(plan, dict(values))

        def batched(values):
            pool = ThreadPoolExecutor(max_workers=workers)

            def run_batch():
                def one(_ix):
                    return DIEngine().run_plan_values(plan, dict(values))
                return list(pool.map(one, range(batch)))
            return run_batch, pool

        entry: dict[str, Any] = {"query": query_name,
                                 "strategy": "msj"}
        entry["serial"] = _pair(serial(columnar), serial(listform), repeats)
        col_batch, col_pool = batched(columnar)
        list_batch, list_pool = batched(listform)
        try:
            col = _best_seconds(col_batch, max(2, repeats // 2)) / batch
            ref = _best_seconds(list_batch, max(2, repeats // 2)) / batch
        finally:
            col_pool.shutdown()
            list_pool.shutdown()
        entry["run_many"] = {
            "columnar_ops_per_sec": round(1.0 / col, 2),
            "list_ops_per_sec": round(1.0 / ref, 2),
            "speedup": round(ref / col, 3),
            "workers": workers,
            "batch": batch,
        }
        results[bench_name] = entry
    return results


def bench_planner(scale: float, repeats: int) -> dict[str, Any]:
    """Cost-based planning: execution gain and plan-cache amortization.

    For each join query, times the same engine on three physical plans —
    the faithful syntactic plan (planning off), the plan optimized from
    encode-time statistics alone, and the plan re-optimized after one
    traced run fed observed cardinalities back — plus the cold (miss)
    versus warm (hit) cost of obtaining a plan through the stats-keyed
    cache.  Speedups are ratios against the planning-off baseline.
    """
    from repro.backends import create_backend
    from repro.backends.base import ExecutionOptions
    from repro.compiler.cost import CostModel
    from repro.compiler.pipeline import optimize_stage
    from repro.encoding.stats import collect_stats

    document = cached_document(scale, seed=SEED)
    results: dict[str, Any] = {}
    for bench_name, query_name in PLANNER_QUERIES.items():
        compiled = compile_xquery(QUERIES[query_name])
        doc_vars = tuple(compiled.documents.values())
        bindings = {var: document_forest((document,)) for var in doc_vars}
        values = {var: DIEngine.prepare_document(forest)
                  for var, forest in bindings.items()}
        stats = {var: collect_stats(rel, width)
                 for var, (rel, width) in values.items()}
        plan = compile_plan(compiled.core, JoinStrategy.MSJ,
                            base_vars=doc_vars)
        estimated = optimize_stage(plan, CostModel(stats),
                                   base_vars=doc_vars)

        # One traced run records actual per-node tuple counts; replanning
        # from them is the observed-cost variant.
        feedback: dict[int, int] = {}
        DIEngine(observed=feedback).run_plan_values(estimated.plan,
                                                    dict(values))
        observed = {estimated.fingerprints[node_id]: count
                    for node_id, count in feedback.items()
                    if node_id in estimated.fingerprints}
        replanned = optimize_stage(plan, CostModel(stats, observed=observed),
                                   base_vars=doc_vars)

        def runner(physical):
            engine = DIEngine()
            return lambda: engine.run_plan_values(physical, dict(values))

        off = _best_seconds(runner(plan), repeats)
        est = _best_seconds(runner(estimated.plan), repeats)
        obs = _best_seconds(runner(replanned.plan), repeats)

        backend = create_backend("engine")
        try:
            backend.prepare(bindings)
            options = ExecutionOptions()
            cold = _best_seconds(
                lambda: (backend.plan_cache.clear(),
                         backend.optimized_for(compiled, options)),
                max(2, repeats // 2))
            backend.optimized_for(compiled, options)  # ensure one entry
            warm = _best_seconds(
                lambda: backend.optimized_for(compiled, options),
                max(repeats, 5))
        finally:
            backend.close()

        results[bench_name] = {
            "query": query_name,
            "strategy": "msj",
            "execution": {
                "off_ops_per_sec": round(1.0 / off, 2),
                "estimated_ops_per_sec": round(1.0 / est, 2),
                "observed_ops_per_sec": round(1.0 / obs, 2),
                "estimated_speedup": round(off / est, 3),
                "observed_speedup": round(off / obs, 3),
            },
            "rewrites": {
                "isolations": estimated.isolations,
                "pushdowns": estimated.pushdowns,
                "reorders": estimated.reorders,
            },
            "plan_cache": {
                "cold_plan_ms": round(cold * 1e3, 3),
                "warm_plan_ms": round(warm * 1e3, 4),
                "warm_speedup": round(cold / warm, 1),
            },
        }
    return results


def bench_telemetry(scale: float, repeats: int) -> dict[str, Any]:
    """What the always-on flight recorder costs on warm sessions.

    Two sessions over one shared XMark document — recorder on (the
    default) and ``record=False`` — each warmed with one run per query so
    documents are encoded and plans cached; the measured loop is then
    pure ``session.run``.  ``overhead_ratio`` is warm recorder-on time
    over recorder-off time (1.0 = free; the design budget is < 1.05).
    The recorder-on session also reports its own histogram-estimated
    p50/p99 per query, exactly what ``/debug/queries`` and ``repro top``
    serve in production.
    """
    from repro.obs.flight import query_fingerprint
    from repro.session import XQuerySession

    document = cached_document(scale, seed=SEED)
    results: dict[str, Any] = {}
    sessions = {"on": XQuerySession(), "off": XQuerySession(record=False)}
    inner = 5  # timing single ~ms runs makes the ratio flake on CI
    try:
        for bench_name, query_name in FIGURE_QUERIES.items():
            query = QUERIES[query_name]
            compiled = compile_xquery(query)
            timings: dict[str, float] = {}
            for label, session in sessions.items():
                for uri in compiled.documents:
                    if uri not in session.documents:
                        session.add_document(uri, (document,))
                session.run(query)  # warm: encodings + plan cache primed

                def loop(session: Any = session) -> None:
                    for _ in range(inner):
                        session.run(query)

                timings[label] = _best_seconds(loop, repeats) / inner
            entry: dict[str, Any] = {
                "query": query_name,
                "recorder_on_ops_per_sec": round(1.0 / timings["on"], 2),
                "recorder_off_ops_per_sec": round(1.0 / timings["off"], 2),
                "overhead_ratio": round(timings["on"] / timings["off"], 4),
            }
            recorder = sessions["on"].recorder
            assert recorder is not None
            fingerprint = query_fingerprint(query)
            for row in recorder.percentiles():
                if row["fingerprint"] == fingerprint \
                        and row["backend"] == "engine":
                    entry["count"] = row["count"]
                    entry["p50_ms"] = row["p50_ms"]
                    entry["p99_ms"] = row["p99_ms"]
                    break
            results[bench_name] = entry
    finally:
        for session in sessions.values():
            session.close()
    return results


def bench_overload(scale: float, repeats: int) -> dict[str, Any]:
    """What overload protection costs — and whether it actually protects.

    Three measurements, matching the promises in docs/ROBUSTNESS.md
    "Overload protection" (each gated by ``--check``):

    * **no_contention** — what admission adds to a warm uncontended
      ``session.run``.  The only extra work on the fast path is one
      ticket (``try_acquire`` + ``release``: a lock and two counter
      bumps), so the gated ``overhead_ratio`` composes the directly
      measured per-ticket cost over the median run time — the session
      A/B ratio against ``admission=False`` is also recorded
      (``ab_ratio``) but only as context: on a single-core host two
      otherwise-identical sessions drift apart by ±3% from allocation
      layout alone, drowning the sub-1% quantity under test.  The
      budget is ≤ 1.02.
    * **flood_4x** — ``run_many`` floods a ``max_concurrency=2``
      session at 4× its limit; every admitted query's wall time
      (queue wait included) must keep p99 inside the default 1 s SLO.
    * **shed_latency** — rejections on a saturated zero-queue
      controller must be near-free (median < 1 ms): shedding is the
      cheap path, so an overloaded server refuses work faster than it
      could serve it.

    Admission costs do not depend on document size, so this section
    always runs at smoke scale — keeping the flood's backlog inside the
    SLO window by construction on full-scale runs.
    """
    from repro.errors import OverloadError
    from repro.resilience.admission import (
        AdmissionConfig, AdmissionController)
    from repro.session import XQuerySession

    scale = min(scale, SMOKE_SCALE)
    document = cached_document(scale, seed=SEED)
    query = QUERIES["Q8"]
    compiled = compile_xquery(query)
    results: dict[str, Any] = {}

    sessions = {"on": XQuerySession(), "off": XQuerySession(admission=False)}
    try:
        for session in sessions.values():
            for uri in compiled.documents:
                session.add_document(uri, (document,))
            session.run(query)  # warm: encodings + plan cache primed

        # Runs strictly alternate between the two sessions (a load
        # burst longer than one ~ms run hits both halves of a pair
        # equally), GC is paused, and medians are taken per side.
        pairs = max(repeats, 3) * 24
        samples: dict[str, list[float]] = {"on": [], "off": []}
        ratios: list[float] = []
        gc.collect()
        gc.disable()
        try:
            for pair_index in range(pairs):
                order = ("on", "off") if pair_index % 2 == 0 \
                    else ("off", "on")
                timing = {}
                for label in order:
                    started = time.perf_counter()
                    sessions[label].run(query)
                    timing[label] = time.perf_counter() - started
                    samples[label].append(timing[label])
                ratios.append(timing["on"] / timing["off"])
        finally:
            gc.enable()
        # The gated figure: the admission fast path's directly measured
        # per-ticket cost over the uncontended run time.  A tight loop
        # on the controller itself is stable to fractions of a percent,
        # where the session A/B above carries ±3% layout bias.
        controller = sessions["on"].admission
        assert controller is not None
        loops = 2000
        started = time.perf_counter()
        for _ in range(loops):
            controller.release(controller.try_acquire())
        ticket_seconds = (time.perf_counter() - started) / loops
        run_seconds = statistics.median(samples["off"])
        results["no_contention"] = {
            "query": "Q8",
            "pairs": pairs,
            "admission_on_ops_per_sec": round(
                1.0 / statistics.median(samples["on"]), 2),
            "admission_off_ops_per_sec": round(
                1.0 / statistics.median(samples["off"]), 2),
            "ab_ratio": round(statistics.median(ratios), 4),
            "ticket_us": round(ticket_seconds * 1e6, 2),
            "overhead_ratio": round(1.0 + ticket_seconds / run_seconds, 4),
        }
    finally:
        for session in sessions.values():
            session.close()

    limit, queries, flood_workers = 2, 16, 8
    flood = XQuerySession(admission=AdmissionConfig(
        max_concurrency=limit, max_queue_depth=32))
    try:
        for uri in compiled.documents:
            flood.add_document(uri, (document,))
        flood.run(query)  # warm
        outcomes = flood.run_many(
            [query] * queries, max_workers=flood_workers, return_errors=True)
        shed = sum(isinstance(o, OverloadError) for o in outcomes)
        recorder = flood.recorder
        assert recorder is not None
        walls = sorted(r.wall_seconds
                       for r in recorder.records(outcome="ok"))
        p99_index = max(0, -(-99 * len(walls) // 100) - 1)  # ceil - 1
        results["flood_4x"] = {
            "query": "Q8",
            "limit": limit,
            "workers": flood_workers,
            "queries": queries,
            "admitted": len(walls),
            "shed": shed,
            "admitted_p99_ms": round(walls[p99_index] * 1e3, 3),
            "slo_target_ms": round(
                recorder.slos[0].target_seconds * 1e3, 3),
        }
    finally:
        flood.close()

    controller = AdmissionController(
        AdmissionConfig(max_concurrency=1, max_queue_depth=0))
    ticket = controller.try_acquire()
    rejections: list[float] = []
    try:
        for _ in range(200):
            started = time.perf_counter()
            try:
                controller.try_acquire()
            except OverloadError:
                pass
            rejections.append(time.perf_counter() - started)
    finally:
        controller.release(ticket)
    rejections.sort()
    results["shed_latency"] = {
        "rejections": len(rejections),
        "median_ms": round(rejections[len(rejections) // 2] * 1e3, 4),
        "p99_ms": round(
            rejections[max(0, -(-99 * len(rejections) // 100) - 1)] * 1e3,
            4),
    }
    return results


def bench_process_parallel(scale: float, repeats: int,
                           batch: int = 8) -> dict[str, Any]:
    """The process tier versus serial and thread-tier serving.

    One warm session over one XMark document; for each query the three
    modes run back-to-back on identical state:

    * **serial** — a plain ``session.run`` loop on the engine backend,
    * **thread** — ``run_many(tier="thread")``: the pre-existing thread
      pool, where the GIL serializes the columnar kernels, and
    * **process** — ``run_many(tier="process")``: the ``procpool``
      backend fanning the batch over worker processes attached to the
      shared-memory document encodings.

    ``process_over_serial`` is the batched-throughput ratio the CI gate
    checks on multi-core runners; ``meta.cpu_count`` records the host's
    parallelism so ``--check`` can tell a regression apart from a
    single-core host (where the ratio is expected to sit at or below
    1.0 — process dispatch costs a pipe round-trip that only pays for
    itself once workers actually run concurrently).
    """
    import os

    from repro.session import XQuerySession

    document = cached_document(scale, seed=SEED)
    cpu_count = os.cpu_count() or 1
    workers = max(2, min(4, cpu_count))
    results: dict[str, Any] = {
        "meta": {
            "cpu_count": cpu_count,
            "workers": workers,
            "batch": batch,
        },
    }
    rounds = max(2, repeats // 2)
    session = XQuerySession(backend="engine", admission=False)
    try:
        for bench_name, query_name in PROCESS_QUERIES.items():
            query = QUERIES[query_name]
            compiled = compile_xquery(query)
            for uri in compiled.documents:
                if uri not in session.documents:
                    session.add_document(uri, (document,))
            # Warm every path: engine encodings + plan cache, the thread
            # executor, and the procpool (worker spawn + shared-memory
            # document registration + worker-side compile) — so the
            # timed loops measure steady-state serving, not setup.
            session.run(query)
            session.run_many([query] * 2, max_workers=workers,
                             tier="thread")
            session.run_many([query] * 2, max_workers=workers,
                             tier="process")

            def serial_loop(query: str = query) -> None:
                for _ in range(batch):
                    session.run(query)

            serial = _best_seconds(serial_loop, rounds) / batch
            thread = _best_seconds(
                lambda: session.run_many([query] * batch,
                                         max_workers=workers,
                                         tier="thread"),
                rounds) / batch
            process = _best_seconds(
                lambda: session.run_many([query] * batch,
                                         max_workers=workers,
                                         tier="process"),
                rounds) / batch
            results[bench_name] = {
                "query": query_name,
                "serial_ops_per_sec": round(1.0 / serial, 2),
                "thread_ops_per_sec": round(1.0 / thread, 2),
                "process_ops_per_sec": round(1.0 / process, 2),
                "thread_over_serial": round(serial / thread, 3),
                "process_over_serial": round(serial / process, 3),
            }
    finally:
        session.close()
    return results


#: Minimum incremental-over-full speedup the ``--check`` gate demands of
#: every single-subtree update measurement (docs/UPDATES.md's promise).
UPDATE_GATE_MIN_SPEEDUP = 10.0

#: Floor for the update-attributable latency (seconds) when computing
#: gated speedups: keeps timer noise around a near-zero incremental cost
#: from turning the ratio negative or infinite.
UPDATE_EPSILON = 5e-5

#: Backends the update section measures (both declare ``delta_updates``).
UPDATE_BACKENDS = ("engine", "sqlite")


def bench_updates(scale: float, repeats: int) -> dict[str, Any]:
    """The O(affected-subtree) write path versus full re-encoding.

    For each delta-capable backend, one warm session commits a
    single-subtree insert and delete through ``session.apply_update``
    and immediately re-reads through a cheap probe query on the updated
    document.  The *latency* numbers deliberately include that first
    post-commit read: the full path defers its real cost (Forest decode
    + backend reload) to the next query via lazy invalidation, so timing
    the commit alone would flatter it.  Insert and delete alternate at
    one position so the relabeling gap is restored every round and the
    incremental chain never spreads.

    The probe's own evaluation cost is identical in both modes (a pure
    read of the same relation, including rebuilding any staged-execution
    cache that *every* update mode invalidates), so each session also
    records that post-invalidation probe time as its baseline and the
    gated ``speedup`` compares the *update-attributable* latencies —
    total minus baseline — while the raw totals are recorded alongside.
    Without the subtraction a backend whose reads scan the relation
    (SQLite's staged translation) would see its ratio pinned near 1 by
    read cost neither path controls.

    ``mixed_90_10`` interleaves nine probe reads with one commit — the
    read-mostly serving mix updates are designed for — and
    ``plan_retention`` checks that the engine's stats-keyed plan cache
    *migrates* its entry across a small update (a warm hit afterwards)
    instead of dropping it.
    """
    from repro.xml.forest import element, text
    from repro.session import XQuerySession

    document = cached_document(scale, seed=SEED)
    probes = {
        "engine": f'document("{XMARK_DOCUMENT}")/site/regions/australia',
        "sqlite": f'for $x in document("{XMARK_DOCUMENT}")/site '
                  f'return <ok>found</ok>',
    }
    subtree = [element("item", [element("name", [text("bench")])])]
    rounds = max(repeats, 5)
    results: dict[str, Any] = {
        "meta": {"gate_min_speedup": UPDATE_GATE_MIN_SPEEDUP,
                 "rounds": rounds},
    }

    def measure(backend: str,
                incremental: bool) -> tuple[float, float, float]:
        """Best (baseline read, insert, delete) seconds for one mode.

        ``baseline`` is the probe read every update mode pays anyway:
        for SQLite the staged-execution cache is explicitly dropped
        first (any update drops it, incremental or full), so the
        baseline includes the rebuild; insert/delete are commit + first
        post-commit probe read.
        """
        probe = probes[backend]
        session = XQuerySession(admission=False)
        try:
            session.add_document(XMARK_DOCUMENT, (document,))
            session.run(probe, backend=backend)
            # Throwaway commit: rebases the backend into updatable
            # coordinates so measured rounds hit steady state.
            session.apply_update(XMARK_DOCUMENT,
                                 session.updatable(XMARK_DOCUMENT))
            session.run(probe, backend=backend)
            target = session.backend_instance(backend)
            drop_staged = getattr(getattr(target, "database", None),
                                  "_invalidate_staged", None)

            def baseline_read() -> None:
                if drop_staged is not None:
                    drop_staged()
                session.run(probe, backend=backend)

            baseline = _best_seconds(baseline_read, rounds + 1)
            best_insert = best_delete = float("inf")
            for _ in range(rounds):
                doc = session.updatable(XMARK_DOCUMENT)
                site = next(row for row in doc.encoded.tuples
                            if row[0] == "<site>")
                inserted = doc.insert_child(site[1], 0, subtree)
                started = time.perf_counter()
                session.apply_update(XMARK_DOCUMENT, inserted,
                                     incremental=incremental)
                session.run(probe, backend=backend)
                best_insert = min(best_insert,
                                  time.perf_counter() - started)
                victim = next(row for row in inserted.encoded.tuples
                              if row[0] == "<item>")
                deleted = inserted.delete_subtree(victim[1])
                started = time.perf_counter()
                session.apply_update(XMARK_DOCUMENT, deleted,
                                     incremental=incremental)
                session.run(probe, backend=backend)
                best_delete = min(best_delete,
                                  time.perf_counter() - started)
            return baseline, best_insert, best_delete
        finally:
            session.close()

    for backend in UPDATE_BACKENDS:
        delta_base, delta_insert, delta_delete = measure(
            backend, incremental=True)
        full_base, full_insert, full_delete = measure(
            backend, incremental=False)
        entry: dict[str, Any] = {
            "probe_read_ms": round(delta_base * 1e3, 3),
        }
        for operation, delta_total, delta_own, full_total, full_own in (
                ("insert", delta_insert, delta_base, full_insert, full_base),
                ("delete", delta_delete, delta_base, full_delete, full_base)):
            delta_cost = max(delta_total - delta_own, UPDATE_EPSILON)
            full_cost = max(full_total - full_own, UPDATE_EPSILON)
            entry[operation] = {
                "incremental_ms": round(delta_total * 1e3, 4),
                "full_reencode_ms": round(full_total * 1e3, 3),
                "incremental_update_ms": round(delta_cost * 1e3, 4),
                "full_update_ms": round(full_cost * 1e3, 3),
                "speedup": round(full_cost / delta_cost, 1),
            }
        results[backend] = entry

    def mixed(incremental: bool) -> float:
        """Ops/sec over a 90/10 read-write mix on the engine backend."""
        probe = probes["engine"]
        session = XQuerySession(admission=False)
        try:
            session.add_document(XMARK_DOCUMENT, (document,))
            session.run(probe, backend="engine")
            session.apply_update(XMARK_DOCUMENT,
                                 session.updatable(XMARK_DOCUMENT))
            session.run(probe, backend="engine")
            cycles = 4 * rounds
            started = time.perf_counter()
            for cycle in range(cycles):
                doc = session.updatable(XMARK_DOCUMENT)
                if cycle % 2 == 0:
                    site = next(row for row in doc.encoded.tuples
                                if row[0] == "<site>")
                    updated = doc.insert_child(site[1], 0, subtree)
                else:
                    victim = next(row for row in doc.encoded.tuples
                                  if row[0] == "<item>")
                    updated = doc.delete_subtree(victim[1])
                session.apply_update(XMARK_DOCUMENT, updated,
                                     incremental=incremental)
                for _ in range(9):
                    session.run(probe, backend="engine")
            return (cycles * 10) / (time.perf_counter() - started)
        finally:
            session.close()

    delta_mixed = mixed(incremental=True)
    full_mixed = mixed(incremental=False)
    results["mixed_90_10"] = {
        "backend": "engine",
        "incremental_ops_per_sec": round(delta_mixed, 2),
        "full_reencode_ops_per_sec": round(full_mixed, 2),
        "speedup": round(delta_mixed / full_mixed, 3),
    }

    session = XQuerySession(admission=False)
    try:
        join_query = QUERIES["Q9"]
        compiled = compile_xquery(join_query)
        for uri in compiled.documents:
            session.add_document(uri, (document,))
        session.run(join_query, backend="engine")
        cache = session.backend_instance("engine").plan_cache
        before = cache.snapshot()
        doc = session.updatable(XMARK_DOCUMENT)
        site = next(row for row in doc.encoded.tuples
                    if row[0] == "<site>")
        session.apply_update(XMARK_DOCUMENT,
                             doc.insert_child(site[1], 0, subtree))
        after_update = cache.snapshot()
        session.run(join_query, backend="engine")
        after_run = cache.snapshot()
        results["plan_retention"] = {
            "query": "Q9",
            "plans_retained": after_update["entries"],
            "migrations": after_update["migrations"] - before["migrations"],
            "hit_after_update":
                after_run["hits"] > after_update["hits"],
        }
    finally:
        session.close()
    return results


def run_bench(scale: float, repeats: int, workers: int = 4,
              batch: int = 8) -> dict[str, Any]:
    document = cached_document(scale, seed=SEED)
    return {
        "meta": {
            "schema": "repro-engine-bench/1",
            "scale": scale,
            "seed": SEED,
            "document_nodes": document.size,
            "repeats": repeats,
            "numpy": kernels._np is not None,
            "python": platform.python_version(),
        },
        "operators": bench_operators(scale, repeats),
        "queries": bench_queries(scale, repeats, workers, batch),
        "planner": bench_planner(scale, repeats),
        "telemetry": bench_telemetry(scale, repeats),
        "overload": bench_overload(scale, repeats),
        "process_parallel": bench_process_parallel(scale, repeats,
                                                   batch=batch),
        "updates": bench_updates(scale, repeats),
    }


def check_regressions(current: dict[str, Any], baseline: dict[str, Any],
                      tolerance: float = 0.25,
                      slack: float = 0.25) -> list[str]:
    """Speedup-ratio regressions of ``current`` against ``baseline``.

    An entry regresses when its speedup drops below ``(1 - tolerance)``
    of the baseline speedup *and* by more than ``slack`` absolute — the
    absolute guard keeps near-1.0 ratios (where a 25% relative drop is
    within timer noise) from flaking on shared CI runners.
    Ratios are host-independent, so baselines recorded elsewhere remain
    comparable; entries missing from either side are ignored.
    """
    failures: list[str] = []

    def compare(kind: str, name: str, new: float, old: float) -> None:
        if new < old * (1.0 - tolerance) and new < old - slack:
            failures.append(
                f"{kind} {name}: speedup {new:.3f} vs baseline {old:.3f} "
                f"(allowed ≥ {old * (1.0 - tolerance):.3f})")

    for name, entry in baseline.get("operators", {}).items():
        now = current.get("operators", {}).get(name)
        if now is not None:
            compare("kernel", name, now["speedup"], entry["speedup"])
    for name, entry in baseline.get("queries", {}).items():
        now = current.get("queries", {}).get(name)
        if now is None:
            continue
        for mode in ("serial", "run_many"):
            if mode in entry and mode in now:
                compare("query", f"{name}/{mode}",
                        now[mode]["speedup"], entry[mode]["speedup"])
    for name, entry in baseline.get("planner", {}).items():
        now = current.get("planner", {}).get(name)
        if now is None:
            continue
        for field in ("estimated_speedup", "observed_speedup"):
            compare("planner", f"{name}/{field}",
                    now["execution"][field], entry["execution"][field])
    for name, entry in baseline.get("telemetry", {}).items():
        now = current.get("telemetry", {}).get(name)
        if now is not None and now.get("overhead_ratio") \
                and entry.get("overhead_ratio"):
            # Inverted so "bigger = better" matches the speedup framing:
            # a growing overhead ratio shows up as a dropping efficiency.
            compare("telemetry", f"{name}/recorder_efficiency",
                    1.0 / now["overhead_ratio"],
                    1.0 / entry["overhead_ratio"])
    overload = current.get("overload")
    if overload and "overload" in baseline:
        # Absolute service-level gates, not baseline diffs: these are the
        # promises docs/ROBUSTNESS.md makes, so drifting past them is a
        # regression even if the baseline already had.
        ratio = overload["no_contention"]["overhead_ratio"]
        if ratio > 1.02:
            failures.append(
                f"overload no_contention: admission overhead ratio "
                f"{ratio:.4f} exceeds the 1.02 budget")
        flood = overload["flood_4x"]
        if flood["admitted_p99_ms"] > flood["slo_target_ms"]:
            failures.append(
                f"overload flood_4x: admitted p99 "
                f"{flood['admitted_p99_ms']:.1f}ms breaches the "
                f"{flood['slo_target_ms']:.0f}ms SLO at 4x load")
        shed = overload["shed_latency"]
        if shed["median_ms"] >= 1.0:
            failures.append(
                f"overload shed_latency: median rejection "
                f"{shed['median_ms']:.3f}ms is not under 1ms")
    parallel = current.get("process_parallel")
    if parallel:
        # Absolute gate on the current run only — process-tier ops/s are
        # host-dependent (core count, spawn cost), so they are never
        # ratio-diffed against a baseline recorded elsewhere.  A single
        # core cannot express process parallelism, so the batched>serial
        # requirement applies only to multi-core hosts.
        if parallel.get("meta", {}).get("cpu_count", 1) >= 2:
            for name, entry in parallel.items():
                if name == "meta":
                    continue
                ratio = entry["process_over_serial"]
                if ratio <= 1.0:
                    failures.append(
                        f"process_parallel {name}: batched process-tier "
                        f"throughput {entry['process_ops_per_sec']:.1f} "
                        f"ops/s does not beat serial "
                        f"{entry['serial_ops_per_sec']:.1f} ops/s "
                        f"(ratio {ratio:.3f}) on a "
                        f"{parallel['meta']['cpu_count']}-core host")
    updates = current.get("updates")
    if updates:
        # Absolute service-level gates on the current run (like overload):
        # the incremental write path must beat full re-encoding by the
        # documented factor on every backend and operation, and a small
        # update must leave the plan cache holding a migrated, hittable
        # plan rather than starting cold.
        floor = updates.get("meta", {}).get("gate_min_speedup",
                                            UPDATE_GATE_MIN_SPEEDUP)
        for backend in UPDATE_BACKENDS:
            entry = updates.get(backend)
            if not entry:
                failures.append(
                    f"updates {backend}: section missing (gate is armed "
                    f"for every delta-capable backend)")
                continue
            for operation in ("insert", "delete"):
                ratio = entry[operation]["speedup"]
                if ratio < floor:
                    failures.append(
                        f"updates {backend}/{operation}: incremental "
                        f"commit+read only {ratio:.1f}x faster than full "
                        f"re-encode (gate ≥ {floor:.0f}x)")
        retention = updates.get("plan_retention", {})
        if retention.get("plans_retained", 0) < 1 \
                or retention.get("migrations", 0) < 1 \
                or not retention.get("hit_after_update"):
            failures.append(
                f"updates plan_retention: expected ≥ 1 migrated plan and "
                f"a warm hit after a small update, got {retention}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark columnar engine kernels vs the list algebra")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="trajectory file to write")
    parser.add_argument("--scale", type=float, default=None,
                        help="XMark scale factor (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of repeats per measurement")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced matrix for CI (small document)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare speedups against a baseline file")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative speedup regression")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None \
        else (SMOKE_SCALE if args.smoke else FULL_SCALE)
    repeats = args.repeats if args.repeats is not None \
        else (3 if args.smoke else 5)

    result = run_bench(scale, repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {args.out} (scale={scale}, repeats={repeats})")
    for name, entry in result["queries"].items():
        print(f"  {name}: serial {entry['serial']['speedup']:.2f}x, "
              f"run_many {entry['run_many']['speedup']:.2f}x columnar speedup")
    for name, entry in result["planner"].items():
        execution = entry["execution"]
        cache = entry["plan_cache"]
        print(f"  {name}: planner {execution['estimated_speedup']:.2f}x "
              f"estimated / {execution['observed_speedup']:.2f}x observed; "
              f"plan {cache['cold_plan_ms']:.1f}ms cold → "
              f"{cache['warm_plan_ms']:.2f}ms warm")
    for name, entry in result["telemetry"].items():
        overhead = (entry["overhead_ratio"] - 1.0) * 100.0
        print(f"  {name}: recorder overhead {overhead:+.1f}% "
              f"({entry['recorder_on_ops_per_sec']:.1f} vs "
              f"{entry['recorder_off_ops_per_sec']:.1f} ops/s), "
              f"p50 {entry.get('p50_ms', '-')}ms / "
              f"p99 {entry.get('p99_ms', '-')}ms")
    overload = result["overload"]
    idle = overload["no_contention"]
    flood = overload["flood_4x"]
    shed = overload["shed_latency"]
    print(f"  overload: admission overhead "
          f"{(idle['overhead_ratio'] - 1.0) * 100.0:+.1f}% idle; "
          f"flood at {flood['workers']}w/limit {flood['limit']}: "
          f"p99 {flood['admitted_p99_ms']:.1f}ms "
          f"(SLO {flood['slo_target_ms']:.0f}ms), {flood['shed']} shed; "
          f"rejections {shed['median_ms']:.3f}ms median")
    parallel = result["process_parallel"]
    meta = parallel["meta"]
    for name, entry in parallel.items():
        if name == "meta":
            continue
        print(f"  {name}: process tier {entry['process_over_serial']:.2f}x "
              f"serial ({entry['process_ops_per_sec']:.1f} vs "
              f"{entry['serial_ops_per_sec']:.1f} ops/s, thread tier "
              f"{entry['thread_ops_per_sec']:.1f}) on "
              f"{meta['cpu_count']} cpus / {meta['workers']} workers")
    updates = result["updates"]
    for backend in UPDATE_BACKENDS:
        entry = updates[backend]
        print(f"  updates/{backend}: insert "
              f"{entry['insert']['incremental_ms']:.2f}ms vs "
              f"{entry['insert']['full_reencode_ms']:.1f}ms "
              f"({entry['insert']['speedup']:.0f}x), delete "
              f"{entry['delete']['incremental_ms']:.2f}ms vs "
              f"{entry['delete']['full_reencode_ms']:.1f}ms "
              f"({entry['delete']['speedup']:.0f}x)")
    mixed = updates["mixed_90_10"]
    retention = updates["plan_retention"]
    print(f"  updates/mixed_90_10: {mixed['incremental_ops_per_sec']:.1f} "
          f"vs {mixed['full_reencode_ops_per_sec']:.1f} ops/s "
          f"({mixed['speedup']:.1f}x); plan cache kept "
          f"{retention['plans_retained']} plan(s), "
          f"{retention['migrations']} migrated, warm hit: "
          f"{retention['hit_after_update']}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regressions(result, baseline, args.tolerance)
        if failures:
            print("speedup regressions vs baseline:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"no speedup regressions vs {args.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
