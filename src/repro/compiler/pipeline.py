"""The staged compilation pipeline: an explicit, observable pass list.

Compilation is an ordered sequence of *named passes* over a shared state:

    parse → lower → [rewrites…] → decorrelate → plan

Each pass is a registry entry (:class:`CompilerPass`), so turning a
rewrite on or off means selecting passes rather than threading booleans
through call sites, and a future rewrite becomes one
:func:`register_rewrite` call.  Every run records per-pass wall-clock
timings and before/after snapshots into a :class:`PipelineTrace`;
``compile_xquery(...).explain(verbose=True)`` renders the trace, making
the cost/benefit of each pass measurable per query (Koch's complexity
results for nonrecursive XQuery are exactly about such per-pass
trade-offs).

Pass stages:

``frontend``
    ``parse`` (XQuery text → surface AST) and ``lower`` (surface → core
    language + document variables).  Always run.

``rewrite``
    Core-to-core, semantics-preserving transformations.  ``simplify``
    (:mod:`repro.compiler.simplify`) ships registered; select rewrites by
    name via ``compile_xquery(query, passes=["simplify", …])``.

``plan``
    ``decorrelate`` (the Section 5 loop-to-join matcher, timed across all
    match attempts) and ``plan`` (core → physical plan).  Run when a plan
    is requested; the trace records how many loops decorrelated.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.compiler import decorrelate as decorrelate_mod
from repro.compiler.plan import JoinStrategy, PlanNode
from repro.compiler.planner import compile_plan, explain_plan
from repro.errors import ReproError
from repro.obs.trace import Tracer
from repro.xquery.ast import CoreExpr, core_to_str
from repro.xquery.lowering import lower_query
from repro.xquery.parser import parse_xquery

RewriteFn = Callable[[CoreExpr], CoreExpr]


@dataclass(frozen=True)
class CompilerPass:
    """A named, registered compilation pass."""

    name: str
    stage: str  # "frontend" | "rewrite" | "plan"
    description: str = ""
    rewrite: RewriteFn | None = None  # stage == "rewrite" only


@dataclass
class PassRecord:
    """One pass execution: timing plus optional before/after snapshots."""

    name: str
    seconds: float
    detail: str = ""
    before: str | None = None
    after: str | None = None


class PipelineTrace:
    """The observable record of one compilation.

    Pass timings come from the shared tracing primitive: every measured
    pass opens a span (``pass.<name>``) on :attr:`tracer` and the
    :class:`PassRecord` is derived from it, so a compilation threaded with
    a live query tracer contributes its passes to the full lifecycle
    trace instead of keeping a private stopwatch.
    """

    def __init__(self, records: Iterable[PassRecord] | None = None,
                 tracer: Tracer | None = None):
        self.records: list[PassRecord] = list(records) if records else []
        self.tracer = tracer if tracer is not None else Tracer()

    @contextmanager
    def measure(self, name: str, detail: str = "") -> Iterator[PassRecord]:
        """Time one pass as a span; yields the record to fill in.

        The record's ``seconds`` is set from the span on exit, then the
        record is appended — callers set ``detail``/``before``/``after``
        (and may adjust ``seconds``, e.g. to carve out matcher time).
        """
        record = PassRecord(name, 0.0, detail)
        with self.tracer.span(f"pass.{name}", compiler_pass=name) as span:
            yield record
        record.seconds = span.seconds
        if record.detail:
            span.set(detail=record.detail)
        self.records.append(record)

    def record(self, name: str, seconds: float, detail: str = "",
               before: str | None = None, after: str | None = None) -> None:
        """Append an externally-measured pass (grafted as a closed span)."""
        self.records.append(PassRecord(name, seconds, detail, before, after))
        span = self.tracer.record_span(f"pass.{name}", seconds,
                                       compiler_pass=name)
        if detail:
            span.set(detail=detail)

    def __getitem__(self, name: str) -> PassRecord:
        for record in reversed(self.records):
            if record.name == name:
                return record
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(record.name == name for record in self.records)

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(record.name for record in self.records)

    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    def render(self, verbose: bool = False) -> str:
        """A readable table of passes; ``verbose`` adds the snapshots."""
        lines = ["compilation pipeline:"]
        for record in self.records:
            entry = f"  {record.name:<12} {record.seconds * 1e3:8.3f} ms"
            if record.detail:
                entry += f"  [{record.detail}]"
            lines.append(entry)
            if verbose:
                for label, snapshot in (("before", record.before),
                                        ("after", record.after)):
                    if snapshot is not None:
                        lines.append(f"    {label}:")
                        lines.extend("      " + line
                                     for line in snapshot.splitlines())
        lines.append(f"  {'total':<12} {self.total_seconds() * 1e3:8.3f} ms")
        return "\n".join(lines)


# -- the pass registry --------------------------------------------------------

_PASSES: dict[str, CompilerPass] = {}


def register_pass(compiler_pass: CompilerPass, replace: bool = False) -> CompilerPass:
    if compiler_pass.name in _PASSES and not replace:
        raise ReproError(
            f"compiler pass {compiler_pass.name!r} is already registered; "
            f"pass replace=True to override"
        )
    _PASSES[compiler_pass.name] = compiler_pass
    return compiler_pass


def register_rewrite(name: str, fn: RewriteFn, description: str = "",
                     replace: bool = False) -> CompilerPass:
    """Register a core-to-core rewrite selectable by name."""
    return register_pass(
        CompilerPass(name, "rewrite", description, rewrite=fn), replace)


def registered_passes(stage: str | None = None) -> tuple[str, ...]:
    """Names of registered passes, optionally filtered by stage."""
    return tuple(name for name, p in _PASSES.items()
                 if stage is None or p.stage == stage)


def get_pass(name: str) -> CompilerPass:
    try:
        return _PASSES[name]
    except KeyError:
        known = ", ".join(repr(n) for n in registered_passes())
        raise ReproError(
            f"unknown compiler pass {name!r}; registered passes: {known}"
        ) from None


# -- the structural passes ----------------------------------------------------

register_pass(CompilerPass(
    "parse", "frontend", "XQuery text → surface AST"))
register_pass(CompilerPass(
    "lower", "frontend", "surface AST → core language + document vars"))
register_pass(CompilerPass(
    "decorrelate", "plan",
    "Section 5 rewrite: independent nested loops → structural joins"))
register_pass(CompilerPass(
    "plan", "plan", "core language → DI physical plan"))
register_pass(CompilerPass(
    "joingraph", "plan",
    "join-graph analysis: isolable bodies, residual partitions"))
register_pass(CompilerPass(
    "cost", "plan",
    "cost-based physical optimization over document statistics"))


def _register_simplify() -> None:
    from repro.compiler.simplify import simplify

    register_rewrite(
        "simplify", simplify,
        "algebraic simplification (emptiness, idempotence, dead code)")


_register_simplify()


# -- running the pipeline -----------------------------------------------------

def run_frontend(query: str, rewrites: Iterable[str] = (),
                 trace: PipelineTrace | None = None,
                 ) -> tuple[CoreExpr, dict[str, str], PipelineTrace]:
    """Parse, lower, and apply the named rewrite passes.

    Returns ``(core, documents, trace)``.  ``rewrites`` are names of
    registered rewrite passes, applied in the order given.
    """
    trace = trace if trace is not None else PipelineTrace()

    with trace.measure("parse"):
        surface = parse_xquery(query)

    with trace.measure("lower") as record:
        core, documents = lower_query(surface)
        record.detail = f"{len(documents)} document(s)"
    record.after = core_to_str(core)  # snapshots stay outside the timing

    for name in rewrites:
        compiler_pass = get_pass(name)
        if compiler_pass.stage != "rewrite" or compiler_pass.rewrite is None:
            raise ReproError(
                f"pass {name!r} is a {compiler_pass.stage} pass and cannot "
                f"be selected as a rewrite"
            )
        before = core_to_str(core)
        with trace.measure(name) as record:
            core = compiler_pass.rewrite(core)
        record.before = before
        record.after = core_to_str(core)
    return core, documents, trace


def plan_stage(core: CoreExpr, strategy: JoinStrategy,
               base_vars: Iterable[str], decorrelate: bool = True,
               trace: PipelineTrace | None = None) -> PlanNode:
    """Run the ``decorrelate`` and ``plan`` passes, recording both.

    Decorrelation happens while the planner walks the core tree, so its
    cost is measured by timing every ``match_join`` attempt; the ``plan``
    record reports the remaining plan-construction time.
    """
    if trace is None:
        return compile_plan(core, strategy, base_vars=base_vars,
                            decorrelate_loops=decorrelate)

    attempts = 0
    matches = 0
    matcher_seconds = 0.0

    def timed_match(loop, base):
        nonlocal attempts, matches, matcher_seconds
        attempts += 1
        started = time.perf_counter()
        try:
            match = decorrelate_mod.match_join(loop, base)
        finally:
            matcher_seconds += time.perf_counter() - started
        if match is not None:
            matches += 1
        return match

    with trace.measure("plan") as record:
        plan = compile_plan(core, strategy, base_vars=base_vars,
                            decorrelate_loops=decorrelate,
                            match_fn=timed_match if decorrelate else None)
        if decorrelate:
            # The matcher runs interleaved with planning; carve its summed
            # time out as its own (recorded) pass, nested in the plan span.
            trace.record("decorrelate", matcher_seconds,
                         detail=f"{matches}/{attempts} loop(s) decorrelated")
        record.detail = f"strategy={strategy.value}"
    record.seconds -= matcher_seconds if decorrelate else 0.0
    record.after = explain_plan(plan)
    return plan


def optimize_stage(plan: PlanNode, model=None, base_vars: Iterable[str] = (),
                   trace: PipelineTrace | None = None):
    """Run the ``joingraph`` and ``cost`` passes over a compiled plan.

    Returns the :class:`~repro.compiler.planner.OptimizedPlan`.  The
    ``joingraph`` record summarizes what the analysis found (how many
    joins, how many with isolable bodies); the ``cost`` record carries
    the rewrites the optimizer actually made.
    """
    from repro.compiler import joingraph
    from repro.compiler.planner import optimize_plan

    if trace is None:
        return optimize_plan(plan, model, base_vars=base_vars)

    with trace.measure("joingraph") as record:
        analyses = joingraph.join_graph(plan)
        isolable = sum(1 for analysis in analyses if analysis.isolable)
        record.detail = f"{len(analyses)} join(s), {isolable} isolable"

    with trace.measure("cost") as record:
        optimized = optimize_plan(plan, model, base_vars=base_vars)
        record.detail = (f"{optimized.isolations} isolated, "
                         f"{optimized.pushdowns} pushed, "
                         f"{optimized.reorders} reordered")
    record.after = optimized.explain()
    return optimized
