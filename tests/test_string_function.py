"""Tests for the string() builtin across representations."""

import pytest

from repro import run_xquery
from repro.encoding.interval import encode
from repro.engine import operators as engine_ops
from repro.xml import operations as ref_ops
from repro.xml.forest import text
from repro.xml.text_parser import parse_forest


def f(source: str):
    return parse_forest(source)


class TestReference:
    def test_concatenates_in_document_order(self):
        trees = f("<a>He<b>llo</b> world</a>")
        assert ref_ops.string_fn(trees) == (text("Hello world"),)

    def test_empty_forest(self):
        assert ref_ops.string_fn(()) == (text(""),)

    def test_elements_only(self):
        assert ref_ops.string_fn(f("<a><b/></a>")) == (text(""),)

    def test_attributes_contribute(self):
        # Attribute values are text children — part of the string value
        # under the paper's encoding conventions.
        trees = f("<a id='x'>y</a>")
        assert ref_ops.string_fn(trees)[0].label == "xy"

    def test_multiple_trees(self):
        assert ref_ops.string_fn(f("<a>1</a><b>2</b>"))[0].label == "12"


class TestEngine:
    def test_matches_reference_per_env(self):
        trees = f("<a>He<b>llo</b></a><c>!</c>")
        encoded = encode(trees)
        result, width = engine_ops.string_fn(
            list(encoded.tuples), encoded.width, [0])
        assert width == 2
        assert result == [("Hello!", 0, 1)]

    def test_empty_env_yields_empty_string(self):
        result, _w = engine_ops.string_fn([], 10, [0, 1])
        assert result == [("", 0, 1), ("", 2, 3)]


class TestAllBackends:
    QUERY = ('for $x in document("d")/r/a '
             'return <s>{string($x)}</s>')
    XML = "<r><a>one<b> two</b></a><a>three</a></r>"

    @pytest.mark.parametrize("backend,strategy", [
        ("interpreter", "msj"), ("engine", "nlj"),
        ("engine", "msj"), ("sqlite", "msj"),
    ])
    def test_agreement(self, backend, strategy):
        result = run_xquery(self.QUERY, {"d": self.XML},
                            backend=backend, strategy=strategy)
        assert result.to_xml() == "<s>one two</s><s>three</s>"

    def test_deeply_nested_text_order_on_sqlite(self):
        # Interleaved nesting exercises GROUP_CONCAT's input ordering.
        xml = "<r><a>1<b>2<c>3</c>4</b>5<b>6</b>7</a></r>"
        result = run_xquery('string(document("d")/r/a)', {"d": xml},
                            backend="sqlite")
        assert result.to_xml() == "1234567"

    def test_string_of_empty_result(self):
        result = run_xquery('string(document("d")/r/zzz)',
                            {"d": self.XML}, backend="sqlite")
        assert result.forest == (text(""),)

    def test_string_in_attribute(self):
        result = run_xquery(
            'for $x in document("d")/r/a return <v s="{string($x)}"/>',
            {"d": self.XML})
        assert result.to_xml() == '<v s="one two"/><v s="three"/>'
