"""Quickstart: run XQuery against XML through every backend.

This walks the paper's running example (Example 1.1 / XMark Q8) end to
end: parse the Figure 1 sample, inspect its dynamic-interval encoding
(Figure 4), and evaluate Q8 through the reference interpreter, the DI
engine (both join strategies), and the generated single SQL statement on
SQLite.

Run with:  python examples/quickstart.py
"""

from repro import compile_xquery, run_xquery
from repro.encoding.interval import encode
from repro.xmark.queries import FIGURE1_SAMPLE, Q8
from repro.xml.text_parser import parse_document


def main() -> None:
    # -- 1. The data: the paper's Figure 1 XMark fragment ------------------
    document = parse_document(FIGURE1_SAMPLE)
    print(f"Document: {document.size} nodes, depth {document.depth}")

    # -- 2. The interval encoding (paper Figure 4) -------------------------
    encoded = encode((document,))
    print(f"\nInterval encoding (width {encoded.width}), first rows:")
    for label, left, right in encoded.tuples[:7]:
        print(f"  {label:<18} {left:>3} {right:>3}")

    # -- 3. The query: XMark Q8 (modified inner-join variant) --------------
    print("\nQuery (XMark Q8):")
    print(Q8)

    # -- 4. One compile, many backends --------------------------------------
    compiled = compile_xquery(Q8)
    documents = {"auction.xml": FIGURE1_SAMPLE}
    for backend, strategy in [
        ("interpreter", "msj"),
        ("engine", "nlj"),
        ("engine", "msj"),
        ("sqlite", "msj"),
    ]:
        result = run_xquery(compiled, documents,
                            backend=backend, strategy=strategy)
        tag = backend if backend != "engine" else f"engine/{strategy}"
        print(f"{tag:>12}: {result.to_xml()}")

    # -- 5. Physical plans: see the Section 5 decorrelation -----------------
    print("\nDI-MSJ physical plan (note the structural merge join):")
    print(compiled.explain("msj"))


if __name__ == "__main__":
    main()
