"""The paper's benchmark queries (Section 6) and the Figure 1 sample.

Q8 and Q9 are the *modified* inner-join variants the paper actually
times ("our modification essentially converts an outer- to an inner-join,
which minimizes the size of the results and better isolates the time spent
evaluating the join"); Q8_ORIGINAL keeps the XMark outer-join semantics
for completeness.  Q13 is unmodified.
"""

from __future__ import annotations

DOCUMENT = "auction.xml"

#: The XMark fragment of Figure 1 — the paper's running example data.
FIGURE1_SAMPLE = """\
<site>
 <people>
  <person id="person0">
   <name>Jaak Tempesti</name>
   <emailaddress>mailto:Tempesti@labs.com</emailaddress>
   <phone>+0 (873) 14873867</phone>
   <homepage>http://www.labs.com/~Tempesti</homepage>
  </person>
  <person id="person1">
   <name>Cong Rosca</name>
   <emailaddress>mailto:Rosca@washington.edu</emailaddress>
   <phone>+0 (64) 27711230</phone>
   <homepage>http://www.washington.edu/~Rosca</homepage>
  </person>
 </people>
 <closed_auctions>
  <closed_auction>
   <seller person="person0" />
   <buyer person="person1" />
   <itemref item="item1" />
   <price>42.12</price>
   <date>08/22/1999</date>
   <quantity>1</quantity>
   <type>Regular</type>
  </closed_auction>
 </closed_auctions>
</site>
"""

#: XMark Q8, modified to an inner join (Section 6.2): names of persons and
#: the number of items they bought.
Q8 = f"""\
for $p in document("{DOCUMENT}")/site/people/person
let $a := for $t in document("{DOCUMENT}")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
where not(empty($a))
return <item person="{{$p/name/text()}}">{{count($a)}}</item>
"""

#: XMark Q8 as published (outer-join semantics: every person appears).
Q8_ORIGINAL = f"""\
for $p in document("{DOCUMENT}")/site/people/person
let $a := for $t in document("{DOCUMENT}")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{{$p/name/text()}}">{{count($a)}}</item>
"""

#: XMark Q9, modified to an inner join (Section 6.3): names of persons and
#: the names of the European items they bought — three nested iterations,
#: document-order constraints at every level.
Q9 = f"""\
for $p in document("{DOCUMENT}")/site/people/person
let $a := for $t in document("{DOCUMENT}")/site/closed_auctions/closed_auction
          let $n := for $t2 in document("{DOCUMENT}")/site/regions/europe/item
                    where $t/itemref/@item = $t2/@id
                    return $t2
          where $p/@id = $t/buyer/@person
          return <item>{{$n/name/text()}}</item>
where not(empty($a))
return <person name="{{$p/name/text()}}">{{$a}}</person>
"""

#: XMark Q13 (Section 6.1): reconstruct Australian items — result
#: construction over large document fragments, no joins.
Q13 = f"""\
for $i in document("{DOCUMENT}")/site/regions/australia/item
return <item name="{{$i/name/text()}}">{{$i/description}}</item>
"""

#: All benchmark queries by name.
QUERIES: dict[str, str] = {
    "Q8": Q8,
    "Q8_ORIGINAL": Q8_ORIGINAL,
    "Q9": Q9,
    "Q13": Q13,
}

# ---------------------------------------------------------------------------
# Further XMark queries expressible in the supported fragment.  These are
# not part of the paper's timed experiments; they broaden the
# "comprehensive translation" claim and are cross-checked over all three
# backends by the test suite.
# ---------------------------------------------------------------------------

#: XMark Q1 — exact-match lookup: initial price of open auctions sold by
#: a given person.
Q1 = f"""\
for $b in document("{DOCUMENT}")/site/open_auctions/open_auction
where $b/seller/@person = "person1"
return $b/initial
"""

#: XMark Q6 — how many items are listed per region (count per subtree).
Q6 = f"""\
for $r in document("{DOCUMENT}")/site/regions/*
return <region count="{{count($r//item)}}"/>
"""

#: XMark Q7 — how many pieces of prose are in the database (three counts,
#: rendered as attributes since the fragment has no arithmetic).
Q7 = f"""\
<counts
  descriptions="{{count(document("{DOCUMENT}")//description)}}"
  annotations="{{count(document("{DOCUMENT}")//annotation)}}"
  emails="{{count(document("{DOCUMENT}")//emailaddress)}}"/>
"""

#: XMark Q15 (adapted) — a long, fully specified path.
Q15 = f"""\
for $a in document("{DOCUMENT}")/site/closed_auctions/closed_auction
return <text>{{$a/annotation/description/text/text()}}</text>
"""

#: XMark Q17 — people without a homepage (emptiness test in where).
Q17 = f"""\
for $p in document("{DOCUMENT}")/site/people/person
where empty($p/homepage/text())
return <personne name="{{$p/name/text()}}"/>
"""

#: XMark Q19 (adapted) — order items by location (order by clause).
Q19 = f"""\
for $b in document("{DOCUMENT}")/site/regions/australia/item
let $k := $b/location/text()
order by $k
return <item name="{{$b/name/text()}}">{{$k}}</item>
"""

#: Extra (non-benchmark) queries by name.
EXTRA_QUERIES: dict[str, str] = {
    "Q1": Q1,
    "Q6": Q6,
    "Q7": Q7,
    "Q15": Q15,
    "Q17": Q17,
    "Q19": Q19,
}
