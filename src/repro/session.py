"""A stateful query session: documents + prepared queries + updates.

:func:`repro.run_xquery` is one-shot: it re-binds documents on every call.
:class:`XQuerySession` is the repository-style API a downstream
application would use:

* documents are registered once (from text, files, nodes, or generated
  XMark data) and reused across queries;
* compiled queries and physical plans are cached per (query, strategy);
* the SQLite backend keeps its shredded tables loaded between queries;
* documents can be *updated in place* (insert/delete subtrees via the
  gap-based relabeling of :mod:`repro.encoding.updates`), invalidating
  exactly the affected backend state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.api import CompiledQuery, QueryResult, compile_xquery
from repro.compiler.plan import JoinStrategy, PlanNode
from repro.compiler.planner import compile_plan
from repro.encoding.updates import UpdatableDocument
from repro.engine.evaluator import DIEngine
from repro.engine.stats import EngineStats
from repro.errors import ReproError
from repro.sql.sqlite_backend import SQLiteDatabase
from repro.xml.forest import Forest, Node
from repro.xml.text_parser import parse_forest
from repro.xquery.interpreter import Interpreter
from repro.xquery.lowering import document_forest


class XQuerySession:
    """Documents and prepared queries with pluggable backends."""

    def __init__(self, backend: str = "engine",
                 strategy: str | JoinStrategy = JoinStrategy.MSJ,
                 simplify: bool = False):
        self.backend = backend
        self.strategy = (strategy if isinstance(strategy, JoinStrategy)
                         else JoinStrategy(strategy))
        self.simplify = simplify
        self._documents: dict[str, Forest] = {}
        self._updatable: dict[str, UpdatableDocument] = {}
        self._compiled: dict[str, CompiledQuery] = {}
        self._plans: dict[tuple[str, JoinStrategy], PlanNode] = {}
        self._sqlite: SQLiteDatabase | None = None
        self._sqlite_loaded: set[str] = set()

    # -- document management ---------------------------------------------------

    def add_document(self, uri: str, source: str | Node | Forest) -> None:
        """Register (or replace) the document bound to ``document(uri)``."""
        if isinstance(source, str):
            forest = parse_forest(source)
        elif isinstance(source, Node):
            forest = (source,)
        elif isinstance(source, tuple):
            forest = source
        else:
            raise ReproError(
                f"cannot use {type(source).__name__} as a document")
        self._documents[uri] = forest
        self._updatable.pop(uri, None)
        self._sqlite_loaded.discard(uri)

    def add_document_file(self, uri: str, path: str | Path) -> None:
        """Register a document from an XML file."""
        self.add_document(uri, Path(path).read_text())

    def add_xmark_document(self, uri: str, scale: float,
                           seed: int = 42) -> None:
        """Register a generated XMark document."""
        from repro.xmark.generator import generate_document

        self.add_document(uri, generate_document(scale, seed=seed))

    @property
    def documents(self) -> list[str]:
        return sorted(self._documents)

    def document(self, uri: str) -> Forest:
        try:
            return self._documents[uri]
        except KeyError:
            raise ReproError(f"no document registered for {uri!r}") from None

    # -- updates --------------------------------------------------------------------

    def updatable(self, uri: str) -> UpdatableDocument:
        """The updatable encoding of a document (created on first use)."""
        if uri not in self._updatable:
            self._updatable[uri] = UpdatableDocument.from_forest(
                self.document(uri))
        return self._updatable[uri]

    def apply_update(self, uri: str,
                     updated: UpdatableDocument) -> None:
        """Commit an updated encoding back as the document's new state."""
        self._documents[uri] = updated.to_forest()
        self._updatable[uri] = updated
        self._sqlite_loaded.discard(uri)

    # -- querying ----------------------------------------------------------------------

    def prepare(self, query: str) -> CompiledQuery:
        """Compile (and cache) a query."""
        compiled = self._compiled.get(query)
        if compiled is None:
            compiled = compile_xquery(query, simplify=self.simplify)
            self._compiled[query] = compiled
        return compiled

    def run(self, query: str, backend: str | None = None,
            strategy: str | JoinStrategy | None = None,
            stats: EngineStats | None = None) -> QueryResult:
        """Run a query against the registered documents."""
        compiled = self.prepare(query)
        bindings = self._bindings(compiled)
        backend = backend or self.backend
        if backend == "engine":
            plan = self._plan(query, compiled, strategy)
            return QueryResult(DIEngine(stats=stats).run_plan(plan, bindings))
        if backend == "interpreter":
            return QueryResult(Interpreter().evaluate(compiled.core, bindings))
        if backend == "sqlite":
            database = self._ensure_sqlite(compiled, bindings)
            return QueryResult(database.execute(compiled.core))
        raise ReproError(f"unknown backend {backend!r}")

    def explain(self, query: str,
                strategy: str | JoinStrategy | None = None) -> str:
        compiled = self.prepare(query)
        return compiled.explain(self._strategy(strategy))

    def profile(self, query: str,
                strategy: str | JoinStrategy | None = None):
        """Run with per-node measurements (see :mod:`repro.engine.profile`)."""
        from repro.engine.profile import profile_plan

        compiled = self.prepare(query)
        plan = self._plan(query, compiled, strategy)
        return profile_plan(plan, self._bindings(compiled))

    def close(self) -> None:
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
            self._sqlite_loaded.clear()

    def __enter__(self) -> "XQuerySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------------------

    def _strategy(self, strategy: str | JoinStrategy | None) -> JoinStrategy:
        if strategy is None:
            return self.strategy
        if isinstance(strategy, JoinStrategy):
            return strategy
        return JoinStrategy(strategy)

    def _plan(self, query: str, compiled: CompiledQuery,
              strategy: str | JoinStrategy | None) -> PlanNode:
        resolved = self._strategy(strategy)
        key = (query, resolved)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_plan(compiled.core, resolved,
                                base_vars=compiled.documents.values())
            self._plans[key] = plan
        return plan

    def _bindings(self, compiled: CompiledQuery) -> dict[str, Forest]:
        bindings = {}
        for uri, var in compiled.documents.items():
            bindings[var] = document_forest(self.document(uri))
        return bindings

    def _ensure_sqlite(self, compiled: CompiledQuery,
                       bindings: Mapping[str, Forest]) -> SQLiteDatabase:
        if self._sqlite is None:
            self._sqlite = SQLiteDatabase()
        for uri, var in compiled.documents.items():
            if uri not in self._sqlite_loaded:
                self._sqlite.load_document(var, bindings[var])
                self._sqlite_loaded.add(uri)
        return self._sqlite
