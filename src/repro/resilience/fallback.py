"""Graceful degradation: fallback chains and their audit records.

A session run may name a *fallback chain* of backends: when the primary
fails in a degradable way (an execution failure, a width overflow on a
fixed-integer SQL engine, an open circuit), the next backend in the
chain answers instead.  Every backend given up on is recorded as a
:class:`Degradation` on the result, so callers can distinguish a clean
answer from a degraded one.

Degradable failures are *backend-level*: the backend could not produce
the answer, but another one might.  Request-level failures — the query's
own deadline (:class:`~repro.errors.QueryTimeoutError`) or resource
budget (:class:`~repro.errors.ResourceBudgetError`) — are never
degraded: retrying the same work elsewhere cannot make it fit the same
limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    ExecutionError,
    OverloadError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceBudgetError,
    WidthOverflowError,
)


@dataclass(frozen=True)
class Degradation:
    """One backend the session gave up on while answering a query."""

    #: Name of the backend that failed or was skipped.
    backend: str
    #: Exception class name (``"WidthOverflowError"``, ``"CircuitOpenError"``…).
    kind: str
    #: The error message (truncated to keep results printable).
    reason: str

    @classmethod
    def from_error(cls, backend: str, error: BaseException) -> "Degradation":
        reason = str(error)
        if len(reason) > 200:
            reason = reason[:200] + "…"
        return cls(backend, type(error).__name__, reason)

    def __str__(self) -> str:
        return f"{self.backend}: {self.kind}: {self.reason}"


def build_chain(primary: str, fallback: "tuple[str, ...] | list[str]",
                ) -> list[str]:
    """The ordered, de-duplicated list of backends to try."""
    chain: list[str] = [primary]
    for name in fallback:
        if name not in chain:
            chain.append(name)
    return chain


def is_degradable(error: BaseException) -> bool:
    """Whether ``error`` warrants moving on to the next backend."""
    if isinstance(error, (QueryTimeoutError, ResourceBudgetError,
                          QueryCancelledError, OverloadError)):
        return False  # request-level: no backend can change the verdict
    return isinstance(error, (ExecutionError, WidthOverflowError,
                              CircuitOpenError))


def counts_against_breaker(error: BaseException) -> bool:
    """Whether ``error`` is evidence of backend ill-health.

    Width overflows are deterministic capability limits (the same query
    fails the same way forever — a healthy backend saying "can't"), and
    timeouts/budgets are request-level, so none of those should push a
    circuit toward open.
    """
    if isinstance(error, (QueryTimeoutError, ResourceBudgetError,
                          CircuitOpenError, QueryCancelledError,
                          OverloadError)):
        return False
    return isinstance(error, ExecutionError)
