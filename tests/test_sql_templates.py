"""Per-operator SQL template tests: each template must agree with the
reference operator algebra when run on SQLite."""

import pytest

from repro.sql.sqlite_backend import run_core_on_sqlite
from repro.xml.text_parser import parse_forest
from repro.xquery.ast import FnApp, Var
from repro.xquery.interpreter import evaluate

FORESTS = {
    "single": "<a/>",
    "flat": "<a/><b/><c/>",
    "nested": "<a><b><c/></b><d/></a>",
    "mixed": "<a id='1'><name>x</name></a><b>y</b><a id='1'><name>x</name></a>",
    "texty": "<p>one</p>two<p>three</p>",
    "duplicated": "<a>1</a><a>1</a><b/><a>2</a>",
}


def check(expr, bindings):
    expected = evaluate(expr, bindings)
    got = run_core_on_sqlite(expr, bindings)
    assert got == expected


@pytest.fixture(params=sorted(FORESTS))
def forest(request):
    return parse_forest(FORESTS[request.param])


UNARY_TEMPLATES = [
    FnApp("roots", (Var("x"),)),
    FnApp("children", (Var("x"),)),
    FnApp("head", (Var("x"),)),
    FnApp("tail", (Var("x"),)),
    FnApp("reverse", (Var("x"),)),
    FnApp("subtrees_dfs", (Var("x"),)),
    FnApp("distinct", (Var("x"),)),
    FnApp("sort", (Var("x"),)),
    FnApp("data", (Var("x"),)),
    FnApp("textnodes", (Var("x"),)),
    FnApp("elementnodes", (Var("x"),)),
    FnApp("count", (Var("x"),)),
    FnApp("select", (Var("x"),), (("label", "<a>"),)),
    FnApp("xnode", (Var("x"),), (("label", "<wrap>"),)),
]


@pytest.mark.parametrize(
    "expr", UNARY_TEMPLATES,
    ids=[e.fn for e in UNARY_TEMPLATES],
)
def test_unary_template_matches_reference(expr, forest):
    check(expr, {"x": forest})


def test_concat_template():
    left = parse_forest("<a><b/></a>")
    right = parse_forest("<c/>x")
    check(FnApp("concat", (Var("x"), Var("y"))), {"x": left, "y": right})


def test_concat_with_empty_side():
    trees = parse_forest("<a/>")
    check(FnApp("concat", (Var("x"), FnApp("empty_forest"))), {"x": trees})
    check(FnApp("concat", (FnApp("empty_forest"), Var("x"))), {"x": trees})


def test_empty_forest_template():
    check(FnApp("empty_forest"), {})


def test_text_const_template():
    check(FnApp("text_const", (), (("value", "hello world"),)), {})


def test_text_const_quoting():
    check(FnApp("text_const", (), (("value", "it's quoted"),)), {})


def test_label_with_quote_in_select():
    trees = (parse_forest("<a/>"))
    expr = FnApp("select", (Var("x"),), (("label", "o'brien"),))
    check(expr, {"x": trees})


def test_composition_of_templates():
    trees = parse_forest("<a><b>x</b><b>y</b></a>")
    expr = FnApp("textnodes", (FnApp("children", (
        FnApp("select", (FnApp("children", (Var("x"),)),),
              (("label", "<b>"),)),
    )),))
    check(expr, {"x": trees})


def test_count_of_empty_is_zero():
    expr = FnApp("count", (FnApp("empty_forest"),))
    result = run_core_on_sqlite(expr, {})
    assert [n.label for n in result] == ["0"]


def test_nested_construction():
    expr = FnApp("xnode", (FnApp("xnode", (FnApp("text_const", (),
                                                 (("value", "x"),)),),
                                 (("label", "<inner>"),)),),
                 (("label", "<outer>"),))
    result = run_core_on_sqlite(expr, {})
    assert evaluate(expr, {}) == result


def test_sort_agrees_on_reordering(forest):
    """sort ∘ reverse must equal sort (order-insensitivity)."""
    expr_direct = FnApp("sort", (Var("x"),))
    expr_reversed = FnApp("sort", (FnApp("reverse", (Var("x"),)),))
    direct = run_core_on_sqlite(expr_direct, {"x": forest})
    rev = run_core_on_sqlite(expr_reversed, {"x": forest})
    assert [t for t in direct] == [t for t in rev]


def test_roots_of_roots_fixpoint(forest):
    once = FnApp("roots", (Var("x"),))
    twice = FnApp("roots", (once,))
    assert (run_core_on_sqlite(once, {"x": forest})
            == run_core_on_sqlite(twice, {"x": forest}))
