"""Shared fixtures: the paper's Figure 1 sample and small XMark documents."""

from __future__ import annotations

import pytest

from repro.xml.text_parser import parse_document, parse_forest
from repro.xmark.generator import generate_document
from repro.xmark.queries import FIGURE1_SAMPLE


@pytest.fixture(scope="session")
def figure1_doc():
    """The Figure 1 XMark fragment as a parsed document root."""
    return parse_document(FIGURE1_SAMPLE)


@pytest.fixture(scope="session")
def figure1_forest():
    """The Figure 1 sample as a forest (single tree)."""
    return parse_forest(FIGURE1_SAMPLE)


@pytest.fixture(scope="session")
def xmark_tiny():
    """A deterministic tiny XMark document (~750 nodes)."""
    return generate_document(0.0005, seed=42)


@pytest.fixture(scope="session")
def xmark_small():
    """A deterministic small XMark document (~3000 nodes)."""
    return generate_document(0.002, seed=42)
