"""The systems under test, as named benchmark cells.

Mapping to the paper's Section 6 rows:

================  ==============================================================
``naive``         the competitor class (Galax / Kweelt / IPSI-XQ / QuiP /
                  X-Hive behaviour): tree-walking nested-loop interpreter
``di-nlj``        the DI prototype with nested-loop iteration plans
``di-msj``        the DI prototype with structural merge-sort-join plans
``sqlite``        the generated single SQL statement on stock SQLite — the
                  "generic relational engine" whose interval-predicate cost
                  motivates Section 5's special operators
================  ==============================================================

Each cell generates its document (untimed, seeded), compiles the query
(untimed), then measures CPU time of evaluation only — matching the
paper's methodology (document load time excluded, CPU seconds reported).
"""

from __future__ import annotations

import time
from typing import Any

from repro.api import compile_xquery
from repro.baselines.naive import NaiveEvaluator
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.engine.evaluator import DIEngine
from repro.engine.stats import EngineStats
from repro.sql.sqlite_backend import SQLiteDatabase
from repro.xmark.generator import cached_document
from repro.xmark.queries import QUERIES
from repro.xquery.lowering import document_forest

SYSTEMS = ("naive", "di-nlj", "di-msj", "sqlite")


def execute_cell(system: str, query_name: str, scale: float,
                 seed: int = 42, memory_budget: int | None = None,
                 collect_breakdown: bool = False) -> dict[str, Any]:
    """Run one (system, query, scale) cell and return measurements.

    Returns a dict with ``seconds`` (CPU), ``wall_seconds``, ``result_size``
    (trees in the result), and — for engine systems with
    ``collect_breakdown`` — a ``breakdown`` dict of per-category fractions.
    Resource-limit failures propagate as exceptions for the harness to
    classify.
    """
    if query_name not in QUERIES:
        raise ValueError(f"unknown query {query_name!r}; "
                         f"choose from {sorted(QUERIES)}")
    document = cached_document(scale, seed=seed)
    compiled = compile_xquery(QUERIES[query_name])
    bindings = {
        var: document_forest(document)
        for _uri, var in compiled.documents.items()
    }

    if system == "naive":
        evaluator = NaiveEvaluator(memory_budget=memory_budget)
        runner = lambda: evaluator.evaluate(compiled.core, bindings)  # noqa: E731
    elif system in ("di-nlj", "di-msj"):
        strategy = JoinStrategy.NLJ if system == "di-nlj" else JoinStrategy.MSJ
        plan = compile_plan(compiled.core, strategy,
                            base_vars=compiled.documents.values())
        stats = EngineStats() if collect_breakdown else None
        engine = DIEngine(stats=stats)
        runner = lambda: engine.run_plan(plan, bindings)  # noqa: E731
    elif system == "sqlite":
        database = SQLiteDatabase()
        for var in bindings:
            database.load_document(var, bindings[var])
        translation = database.translate(compiled.core)
        runner = lambda: database.run_translation(translation)  # noqa: E731
        stats = None
    else:
        raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")

    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    result = runner()
    measurements: dict[str, Any] = {
        "seconds": time.process_time() - cpu_start,
        "wall_seconds": time.perf_counter() - wall_start,
        "result_size": len(result),
        "scale": scale,
        "document_nodes": document.size,
    }
    if system in ("di-nlj", "di-msj") and collect_breakdown:
        engine_stats: EngineStats = stats  # type: ignore[assignment]
        measurements["breakdown"] = engine_stats.fractions()
    return measurements
