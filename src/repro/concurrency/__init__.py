"""Concurrency primitives for serving many clients from one session.

* :class:`~repro.concurrency.rwlock.RWLock` — the readers–writer lock
  guarding session state (queries read, updates write);
* :class:`~repro.concurrency.pool.ThreadLocalPool` — per-thread
  connections/databases with uniform close-all semantics;
* :class:`~repro.concurrency.procpool.ProcessQueryPool` — the
  process-parallel execution tier over shared-memory columnar
  encodings.

The thread-safety contract these enable is documented in
``docs/CONCURRENCY.md`` (the process tier under "Process-parallel
serving").
"""

from repro.concurrency.pool import ThreadLocalPool
from repro.concurrency.procpool import ProcessQueryPool
from repro.concurrency.rwlock import RWLock

__all__ = ["ProcessQueryPool", "RWLock", "ThreadLocalPool"]
