"""Unit tests for dynamic interval encodings of environment sequences."""

import pytest

from repro.encoding.dynamic import (
    EnvironmentSequence,
    decode_sequence,
    encode_sequence,
)
from repro.encoding.interval import encode
from repro.errors import EncodingError
from repro.xml.forest import text
from repro.xml.text_parser import parse_forest


def f(source: str):
    return parse_forest(source)


class TestEncodeSequence:
    def test_blocks_are_disjoint(self):
        index, relation = encode_sequence([f("<a/>"), f("<b/><c/>")])
        assert index == [0, 1]
        assert relation.width == 4  # widest forest: two nodes
        assert relation.tuples == [
            ("<a>", 0, 1), ("<b>", 4, 5), ("<c>", 6, 7),
        ]

    def test_empty_forests_leave_empty_blocks(self):
        index, relation = encode_sequence([(), f("<a/>"), ()])
        assert index == [0, 1, 2]
        assert relation.tuples == [("<a>", 2, 3)]

    def test_explicit_width(self):
        _, relation = encode_sequence([f("<a/>")], width=100)
        assert relation.width == 100

    def test_width_too_small_rejected(self):
        with pytest.raises(EncodingError):
            encode_sequence([f("<a><b/></a>")], width=2)

    def test_empty_sequence(self):
        index, relation = encode_sequence([])
        assert index == []
        assert relation.tuples == []


class TestDecodeSequence:
    def test_roundtrip(self):
        forests = [f("<a/>"), (), f("<b><c/></b>")]
        index, relation = encode_sequence(forests)
        assert decode_sequence(index, relation, relation.width) == forests

    def test_tuple_outside_index_rejected(self):
        with pytest.raises(EncodingError):
            decode_sequence([0], [("x", 10, 11)], 4)

    def test_block_crossing_rejected(self):
        with pytest.raises(EncodingError):
            decode_sequence([0, 1], [("x", 3, 5)], 4)

    def test_zero_width_with_rows_rejected(self):
        with pytest.raises(EncodingError):
            decode_sequence([0], [("x", 0, 1)], 0)

    def test_zero_width_empty_ok(self):
        assert decode_sequence([0, 1], [], 0) == [(), ()]

    def test_sparse_index(self):
        # Environment indices need not be consecutive (the for-rule uses
        # root left endpoints as indices).
        rows = [("x", 20, 21), ("y", 52, 53)]
        assert decode_sequence([5, 13], rows, 4) == [
            (text("x"),), (text("y"),),
        ]


class TestEnvironmentSequence:
    def test_initial(self, figure1_forest):
        seq = EnvironmentSequence.initial({"doc": figure1_forest})
        assert seq.index == [0]
        assert seq.forests("doc") == [figure1_forest]

    def test_unsorted_index_rejected(self):
        with pytest.raises(EncodingError):
            EnvironmentSequence([2, 1], {}, {})

    def test_duplicate_index_rejected(self):
        with pytest.raises(EncodingError):
            EnvironmentSequence([1, 1], {}, {})

    def test_tables_widths_must_match(self):
        with pytest.raises(EncodingError):
            EnvironmentSequence([0], {"x": []}, {})

    def test_environments_iteration(self):
        index, relation = encode_sequence([f("<a/>"), f("<b/>")])
        seq = EnvironmentSequence(index, {"x": relation.tuples},
                                  {"x": relation.width})
        envs = list(seq.environments())
        assert envs == [{"x": f("<a/>")}, {"x": f("<b/>")}]

    def test_block_and_local_block(self):
        index, relation = encode_sequence([f("<a/>"), f("<b/>")])
        seq = EnvironmentSequence(index, {"x": relation.tuples},
                                  {"x": relation.width})
        assert seq.block("x", 1) == [("<b>", 2, 3)]
        assert seq.local_block("x", 1) == [("<b>", 0, 1)]

    def test_with_binding(self):
        seq = EnvironmentSequence([0], {}, {})
        encoded = encode(f("<a/>"))
        extended = seq.with_binding("y", encoded.tuples, encoded.width)
        assert extended.forests("y") == [f("<a/>")]
        assert seq.variables == []  # original untouched

    def test_restricted(self):
        index, relation = encode_sequence([f("<a/>"), f("<b/>"), f("<c/>")])
        seq = EnvironmentSequence(index, {"x": relation.tuples},
                                  {"x": relation.width})
        restricted = seq.restricted([0, 2])
        assert restricted.index == [0, 2]
        assert restricted.forests("x") == [f("<a/>"), f("<c/>")]

    def test_restricted_unknown_index_rejected(self):
        seq = EnvironmentSequence([0], {}, {})
        with pytest.raises(EncodingError):
            seq.restricted([5])

    def test_validate(self):
        index, relation = encode_sequence([f("<a/>")])
        seq = EnvironmentSequence(index, {"x": relation.tuples},
                                  {"x": relation.width})
        seq.validate()

    def test_dual_reading_as_single_forest(self):
        """A blocked relation read without the index is the concatenation."""
        from repro.encoding.interval import decode
        forests = [f("<a/>"), f("<b/><c/>")]
        _, relation = encode_sequence(forests)
        combined = decode(relation.tuples)
        assert combined == f("<a/><b/><c/>")
