"""Edge cases across the stack: sparse environments, empty blocks,
degenerate queries, deep nesting, odd labels."""

import pytest

from repro import run_xquery
from repro.encoding.dynamic import decode_sequence
from repro.engine import operators as ops
from repro.xml.text_parser import parse_forest


def f(source: str):
    return parse_forest(source)


BACKENDS = [("interpreter", "msj"), ("engine", "nlj"),
            ("engine", "msj"), ("sqlite", "msj")]


def run_all(query: str, documents):
    outputs = {
        run_xquery(query, documents, backend=backend,
                   strategy=strategy).to_xml()
        for backend, strategy in BACKENDS
    }
    assert len(outputs) == 1, f"backends diverged: {outputs}"
    return outputs.pop()


class TestSparseEnvironments:
    """Operators over blocked relations with holes in the index."""

    # Environment blocks at sparse indices 3 and 17, width 10.
    REL = [("<a>", 30, 35), ("<b>", 31, 32), ("x", 33, 34),
           ("<c>", 170, 171)]
    INDEX = [3, 9, 17]

    def test_count_covers_empty_envs(self):
        result, width = ops.count_roots(self.REL, 10, self.INDEX)
        decoded = decode_sequence(self.INDEX, result, width)
        assert [forest[0].label for forest in decoded] == ["1", "0", "1"]

    def test_xnode_emits_in_every_env(self):
        result, width = ops.xnode("<w>", self.REL, 10, self.INDEX)
        decoded = decode_sequence(self.INDEX, result, width)
        assert [len(forest) for forest in decoded] == [1, 1, 1]
        assert [len(forest[0].children) for forest in decoded] == [1, 0, 1]

    def test_concat_with_disjoint_envs(self):
        left = [("<a>", 30, 31)]     # env 3 only
        right = [("<b>", 170, 171)]  # env 17 only
        result = ops.concat(left, 10, right, 10)
        decoded = decode_sequence([3, 17], result, 20)
        assert decoded[0] == f("<a/>")
        assert decoded[1] == f("<b/>")

    def test_string_fn_sparse(self):
        result, width = ops.string_fn(self.REL, 10, self.INDEX)
        decoded = decode_sequence(self.INDEX, result, width)
        assert [forest[0].label for forest in decoded] == ["x", "", ""]


class TestDegenerateQueries:
    DOC = {"d": "<r><a>1</a></r>"}

    def test_query_returning_nothing(self):
        assert run_all('document("d")/r/zzz', self.DOC) == ""

    def test_constant_query_without_documents(self):
        assert run_all("<fixed/>", {}) == "<fixed/>"

    def test_string_literal_query(self):
        assert run_all('"hello"', {}) == "hello"

    def test_empty_sequence_query(self):
        assert run_all("()", {}) == ""

    def test_for_over_single_tree(self):
        assert run_all('for $x in document("d")/r return count($x)',
                       self.DOC) == "1"

    def test_where_filtering_everything(self):
        assert run_all(
            'for $x in document("d")/r/a where empty($x) return $x',
            self.DOC) == ""

    def test_nested_constructors_only(self):
        assert run_all("<a><b><c>deep</c></b></a>", {}) == \
            "<a><b><c>deep</c></b></a>"

    def test_doubly_nested_empty_loops(self):
        assert run_all(
            'for $x in document("d")/r/zz '
            'return for $y in document("d")/r/zz return <never/>',
            self.DOC) == ""


class TestDeepNesting:
    def test_deep_flwr_nesting(self):
        # Three levels of self-composed for loops: widths square per
        # level (8 → 64 → 4096 → 16M), still inside SQLite's 64-bit cap.
        doc = {"d": "<r><a/></r>"}
        query = 'document("d")/r/a'
        for level in range(3):
            query = f'for $v{level} in {query} return $v{level}'
        assert run_all(query, doc) == "<a/>"

    def test_five_levels_on_bigint_engine(self):
        # The same shape two levels deeper overflows fixed-width backends
        # (Section 4.3) but runs fine on the arbitrary-precision engine.
        doc = {"d": "<r><a/></r>"}
        query = 'document("d")/r/a'
        for level in range(5):
            query = f'for $v{level} in {query} return $v{level}'
        for backend, strategy in (("interpreter", "msj"), ("engine", "msj")):
            result = run_xquery(query, doc, backend=backend,
                                strategy=strategy)
            assert result.to_xml() == "<a/>"
        from repro.errors import WidthOverflowError
        with pytest.raises(WidthOverflowError):
            run_xquery(query, doc, backend="sqlite")

    def test_deeply_nested_document(self):
        depth = 30
        xml = "<e>" * depth + "x" + "</e>" * depth
        result = run_all(f'document("d"){"/e" * depth}/text()', {"d": xml})
        assert result == "x"


class TestOddLabels:
    def test_unicode_content(self):
        doc = {"d": "<r><name>Özsu</name><name>Tōkyō</name></r>"}
        assert run_all('document("d")/r/name/text()', doc) == "ÖzsuTōkyō"

    def test_quotes_in_text(self):
        doc = {"d": "<r><t>it's \"quoted\"</t></r>"}
        assert run_all('document("d")/r/t/text()', doc) == \
            "it's \"quoted\""

    def test_label_looking_like_sql(self):
        doc = {"d": "<r><t>'; DROP TABLE doc_0; --</t></r>"}
        assert run_all('document("d")/r/t/text()', doc) == \
            "'; DROP TABLE doc_0; --"

    def test_comparison_against_injection_literal(self):
        doc = {"d": "<r><t>safe</t></r>"}
        assert run_all(
            "for $x in document(\"d\")/r/t "
            "where $x = \"'; DROP TABLE doc_0; --\" return $x",
            doc) == ""


class TestConditionCombinations:
    DOC = {"d": "<r><a k='1'/><a k='2'/><a k='3'/></r>"}

    def test_or_in_where_on_all_backends(self):
        assert run_all(
            'for $x in document("d")/r/a '
            'where $x/@k = "1" or $x/@k = "3" return $x/@k',
            self.DOC) == '[@k="1"][@k="3"]'

    def test_and_or_not_mix(self):
        assert run_all(
            'for $x in document("d")/r/a '
            'where not($x/@k = "2") and ($x/@k = "1" or $x/@k = "3") '
            'return $x/@k',
            self.DOC) == '[@k="1"][@k="3"]'

    def test_less_between_paths(self):
        assert run_all(
            'for $x in document("d")/r/a '
            'where $x/@k < "3" return $x/@k',
            self.DOC) == '[@k="1"][@k="2"]'

    def test_deep_equal_between_subtrees(self):
        doc = {"d": "<r><p><k>v</k></p><q><k>v</k></q><q><k>w</k></q></r>"}
        assert run_all(
            'for $q in document("d")/r/q '
            'where deep-equal($q/k, document("d")/r/p/k) '
            'return <same/>',
            doc) == "<same/>"
