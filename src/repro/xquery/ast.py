"""Abstract syntax for the core language (Definition 2.2) and surface XQuery.

The **core language** is the paper's Minimal XQuery:

    e ::= x | XFn(e1, …, ek) | let x = e in e' | where φ return e'
        | for x in e do e'

Conditions φ are boolean combinations of the three primitives of Figure 2
(``equal``, ``less``, ``empty``) plus ``SomeEqual``, the existential general
comparison needed to lower XQuery's ``=`` faithfully when operands may
contain more than one tree.

The **surface language** mirrors the XQuery fragment exercised by the
paper's examples: FLWR expressions, XPath child/attribute/descendant steps,
``text()``, element constructors with embedded expressions, ``document()``,
``count()``, ``empty()``, ``not()`` and general comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

# ---------------------------------------------------------------------------
# Core language
# ---------------------------------------------------------------------------


class CoreExpr:
    """Base class of core-language expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Var(CoreExpr):
    """A variable reference ``x`` resolved against the environment."""

    name: str


@dataclass(frozen=True, slots=True)
class FnApp(CoreExpr):
    """Application of a registered XFn to argument expressions.

    ``params`` carries compile-time string parameters (e.g. the label for
    ``select`` and ``xnode``, the literal for ``text_const``); they are part
    of the operator, not data, so they are baked into the generated SQL.
    """

    fn: str
    args: tuple[CoreExpr, ...] = ()
    params: tuple[tuple[str, str], ...] = ()

    def param(self, key: str) -> str:
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(f"function {self.fn!r} has no parameter {key!r}")


@dataclass(frozen=True, slots=True)
class Let(CoreExpr):
    """``let x = value in body``."""

    var: str
    value: CoreExpr
    body: CoreExpr


@dataclass(frozen=True, slots=True)
class Where(CoreExpr):
    """``where condition return body``."""

    condition: "Condition"
    body: CoreExpr


@dataclass(frozen=True, slots=True)
class For(CoreExpr):
    """``for var in source do body`` — iterate over top-level trees."""

    var: str
    source: CoreExpr
    body: CoreExpr


# -- conditions ---------------------------------------------------------------


class Condition:
    """Base class of boolean conditions φ."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Equal(Condition):
    """Structural equality of two forests (Figure 2 ``equal``)."""

    left: CoreExpr
    right: CoreExpr


@dataclass(frozen=True, slots=True)
class SomeEqual(Condition):
    """Existential equality: some tree of ``left`` equals some tree of ``right``.

    This is XQuery's general-comparison semantics for ``=``; it degenerates
    to :class:`Equal` when both operands are single trees.
    """

    left: CoreExpr
    right: CoreExpr


@dataclass(frozen=True, slots=True)
class Less(Condition):
    """Strict structural order of two forests (Figure 2 ``less``)."""

    left: CoreExpr
    right: CoreExpr


@dataclass(frozen=True, slots=True)
class Empty(Condition):
    """Emptiness test (Figure 2 ``empty``)."""

    expr: CoreExpr


@dataclass(frozen=True, slots=True)
class Not(Condition):
    condition: Condition


@dataclass(frozen=True, slots=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True, slots=True)
class Or(Condition):
    left: Condition
    right: Condition


# -- traversal helpers --------------------------------------------------------


def iter_subexpressions(expr: CoreExpr) -> Iterator[CoreExpr]:
    """Yield ``expr`` and every nested core expression, pre-order."""
    stack: list[CoreExpr] = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_children_of(node))


def _children_of(expr: CoreExpr) -> list[CoreExpr]:
    if isinstance(expr, FnApp):
        return list(expr.args)
    if isinstance(expr, Let):
        return [expr.value, expr.body]
    if isinstance(expr, For):
        return [expr.source, expr.body]
    if isinstance(expr, Where):
        return list(condition_expressions(expr.condition)) + [expr.body]
    return []


def condition_expressions(condition: Condition) -> Iterator[CoreExpr]:
    """Yield every core expression embedded in a condition."""
    if isinstance(condition, (Equal, SomeEqual, Less)):
        yield condition.left
        yield condition.right
    elif isinstance(condition, Empty):
        yield condition.expr
    elif isinstance(condition, Not):
        yield from condition_expressions(condition.condition)
    elif isinstance(condition, (And, Or)):
        yield from condition_expressions(condition.left)
        yield from condition_expressions(condition.right)
    else:
        raise TypeError(f"unknown condition type: {type(condition).__name__}")


def free_variables(expr: CoreExpr) -> frozenset[str]:
    """The free variables of a core expression."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, FnApp):
        result: frozenset[str] = frozenset()
        for arg in expr.args:
            result |= free_variables(arg)
        return result
    if isinstance(expr, Let):
        return free_variables(expr.value) | (free_variables(expr.body) - {expr.var})
    if isinstance(expr, For):
        return free_variables(expr.source) | (free_variables(expr.body) - {expr.var})
    if isinstance(expr, Where):
        return condition_free_variables(expr.condition) | free_variables(expr.body)
    raise TypeError(f"unknown expression type: {type(expr).__name__}")


def condition_free_variables(condition: Condition) -> frozenset[str]:
    """The free variables of a condition."""
    result: frozenset[str] = frozenset()
    for sub in condition_expressions(condition):
        result |= free_variables(sub)
    return result


def core_to_str(expr: CoreExpr, indent: int = 0) -> str:
    """A readable multi-line rendering of a core expression (for debugging)."""
    pad = "  " * indent
    if isinstance(expr, Var):
        return f"{pad}${expr.name}"
    if isinstance(expr, FnApp):
        params = ", ".join(f"{k}={v!r}" for k, v in expr.params)
        header = f"{pad}{expr.fn}" + (f"[{params}]" if params else "")
        if not expr.args:
            return header + "()"
        body = ",\n".join(core_to_str(arg, indent + 1) for arg in expr.args)
        return f"{header}(\n{body}\n{pad})"
    if isinstance(expr, Let):
        return (
            f"{pad}let ${expr.var} =\n{core_to_str(expr.value, indent + 1)}\n"
            f"{pad}in\n{core_to_str(expr.body, indent + 1)}"
        )
    if isinstance(expr, Where):
        return (
            f"{pad}where {condition_to_str(expr.condition)}\n"
            f"{pad}return\n{core_to_str(expr.body, indent + 1)}"
        )
    if isinstance(expr, For):
        return (
            f"{pad}for ${expr.var} in\n{core_to_str(expr.source, indent + 1)}\n"
            f"{pad}do\n{core_to_str(expr.body, indent + 1)}"
        )
    raise TypeError(f"unknown expression type: {type(expr).__name__}")


def condition_to_str(condition: Condition) -> str:
    """A single-line rendering of a condition."""
    if isinstance(condition, Equal):
        return f"equal({_inline(condition.left)}, {_inline(condition.right)})"
    if isinstance(condition, SomeEqual):
        return f"some-equal({_inline(condition.left)}, {_inline(condition.right)})"
    if isinstance(condition, Less):
        return f"less({_inline(condition.left)}, {_inline(condition.right)})"
    if isinstance(condition, Empty):
        return f"empty({_inline(condition.expr)})"
    if isinstance(condition, Not):
        return f"not({condition_to_str(condition.condition)})"
    if isinstance(condition, And):
        return f"({condition_to_str(condition.left)} and {condition_to_str(condition.right)})"
    if isinstance(condition, Or):
        return f"({condition_to_str(condition.left)} or {condition_to_str(condition.right)})"
    raise TypeError(f"unknown condition type: {type(condition).__name__}")


def _inline(expr: CoreExpr) -> str:
    return " ".join(core_to_str(expr).split())


# ---------------------------------------------------------------------------
# Surface language
# ---------------------------------------------------------------------------


class SurfaceExpr:
    """Base class of surface (parsed XQuery) expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class SVarRef(SurfaceExpr):
    """``$name``."""

    name: str


@dataclass(frozen=True, slots=True)
class SStringLiteral(SurfaceExpr):
    value: str


@dataclass(frozen=True, slots=True)
class SDocument(SurfaceExpr):
    """``document("uri")`` / ``doc("uri")``."""

    uri: str


@dataclass(frozen=True, slots=True)
class SStep:
    """One XPath step.

    ``axis`` is ``child``, ``attribute``, or ``descendant``;
    ``test`` is a tag name, an attribute name, ``*`` or ``text()``.
    """

    axis: str
    test: str


@dataclass(frozen=True, slots=True)
class SPath(SurfaceExpr):
    """``base/step/step…`` with optional trailing predicate-free steps."""

    base: SurfaceExpr
    steps: tuple[SStep, ...]


@dataclass(frozen=True, slots=True)
class SPredicate(SurfaceExpr):
    """``base[condition]`` — keep trees for which the condition holds.

    Inside the predicate the context item is available as the reserved
    variable ``.`` (exposed by the parser as a relative path base).
    """

    base: SurfaceExpr
    condition: "SurfaceExpr"


@dataclass(frozen=True, slots=True)
class SContextItem(SurfaceExpr):
    """The context item ``.`` inside a predicate."""


@dataclass(frozen=True, slots=True)
class SFunctionCall(SurfaceExpr):
    """``name(arg, …)`` for the supported built-ins."""

    name: str
    args: tuple[SurfaceExpr, ...]


@dataclass(frozen=True, slots=True)
class SComparison(SurfaceExpr):
    """General comparison ``left op right`` with op in ``= != < <= > >=``."""

    op: str
    left: SurfaceExpr
    right: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SBooleanOp(SurfaceExpr):
    """``and`` / ``or`` over boolean-valued surface expressions."""

    op: str
    left: SurfaceExpr
    right: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SSequence(SurfaceExpr):
    """Comma-separated sequence ``(e1, e2, …)``."""

    items: tuple[SurfaceExpr, ...]


@dataclass(frozen=True, slots=True)
class SAttributeConstructor:
    """``name="literal{expr}…"`` inside an element constructor tag."""

    name: str
    parts: tuple[SurfaceExpr, ...]  # SStringLiteral for literal runs


@dataclass(frozen=True, slots=True)
class SElementConstructor(SurfaceExpr):
    """``<tag attr="…">content</tag>`` with ``{expr}`` interpolation."""

    tag: str
    attributes: tuple[SAttributeConstructor, ...]
    content: tuple[SurfaceExpr, ...]


@dataclass(frozen=True, slots=True)
class SForClause:
    var: str
    source: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SLetClause:
    var: str
    value: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SOrderBy:
    """``order by key [ascending|descending]`` (single sort key)."""

    key: SurfaceExpr
    descending: bool = False


@dataclass(frozen=True, slots=True)
class SFLWR(SurfaceExpr):
    """A FLWR expression: for/let clauses, where, order by, return."""

    clauses: tuple[SForClause | SLetClause, ...]
    where: SurfaceExpr | None
    returns: SurfaceExpr
    order_by: SOrderBy | None = None


@dataclass(frozen=True, slots=True)
class SQuantified(SurfaceExpr):
    """``some|every $var in source satisfies condition``.

    Boolean-valued; usable wherever a condition is (where clauses,
    predicates, if conditions).
    """

    quantifier: str  # "some" | "every"
    var: str
    source: SurfaceExpr
    condition: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SConditional(SurfaceExpr):
    """``if (condition) then consequent else alternative``."""

    condition: SurfaceExpr
    consequent: SurfaceExpr
    alternative: SurfaceExpr


@dataclass(frozen=True, slots=True)
class SPositional(SurfaceExpr):
    """``base[N]`` — the N-th tree (1-based) of the base sequence.

    Evaluated against the whole base sequence (the XQuery semantics of
    ``(expr)[N]``), not per XPath step context — see the lowering notes.
    """

    base: SurfaceExpr
    position: int


@dataclass(frozen=True, slots=True)
class SQuery:
    """A full parsed query: the expression plus referenced document URIs."""

    body: SurfaceExpr
    documents: tuple[str, ...] = field(default=())
