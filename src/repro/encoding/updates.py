"""Updating interval-encoded documents (the paper's orthogonal concern).

Section 1 of the paper notes that updates to interval-encoded documents
are orthogonal to the query translation and handled by known labeling
techniques (its references [15, 16, 27]).  This module provides the
simplest sound member of that family — *gap-based relabeling*:

* encodings need not be tight (Definition 3.1), so inserting a subtree
  only requires enough unused integers between the insertion point's
  neighbouring endpoints;
* when the local gap is exhausted, the document is *spread*: re-encoded
  with a uniform stride so that every adjacent endpoint pair regains
  breathing room (amortizing future insertions).

Deletion never needs renumbering — dropping a subtree's tuples leaves a
valid (now gappy) encoding.

All operations return new :class:`UpdatableDocument` states; nothing is
mutated, matching the package's value semantics.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.encoding.interval import (
    EncodedForest,
    IntervalTuple,
    decode,
    validate_encoding,
)
from repro.errors import EncodingError
from repro.xml.forest import Forest, Node

#: Default spread stride: integers of slack left after each endpoint.
DEFAULT_STRIDE = 16


@dataclass(frozen=True)
class UpdateStats:
    """What an update did (for tests and instrumentation)."""

    inserted_nodes: int = 0
    deleted_nodes: int = 0
    relabeled: bool = False


class UpdatableDocument:
    """An interval-encoded forest supporting insert/delete of subtrees.

    Nodes are addressed by their left endpoint (unique within an
    encoding).  ``stride`` controls how much slack a relabeling pass
    leaves between endpoints.
    """

    def __init__(self, encoded: EncodedForest, stride: int = DEFAULT_STRIDE):
        if stride < 1:
            raise ValueError("stride must be at least 1")
        self.encoded = encoded
        self.stride = stride
        self.last_stats = UpdateStats()

    @classmethod
    def from_forest(cls, trees: Forest | Node,
                    stride: int = DEFAULT_STRIDE) -> "UpdatableDocument":
        if isinstance(trees, Node):
            trees = (trees,)
        document = cls(EncodedForest([], 0), stride)
        rows, width = _spread_rows(_encode_flat(trees), stride)
        return cls(EncodedForest(rows, width, sort=False), stride)

    # -- inspection ------------------------------------------------------------

    def to_forest(self) -> Forest:
        return decode(self.encoded)

    def node_count(self) -> int:
        return len(self.encoded)

    def find(self, left: int) -> IntervalTuple:
        """The tuple whose left endpoint is ``left``."""
        lows = [row[1] for row in self.encoded.tuples]
        position = bisect_left(lows, left)
        if position >= len(lows) or lows[position] != left:
            raise EncodingError(f"no node with left endpoint {left}")
        return self.encoded.tuples[position]

    # -- updates ------------------------------------------------------------------

    def delete_subtree(self, left: int) -> "UpdatableDocument":
        """Remove the node at ``left`` together with its whole subtree."""
        root = self.find(left)
        kept = [row for row in self.encoded.tuples
                if not (root[1] <= row[1] and row[2] <= root[2])]
        removed = len(self.encoded) - len(kept)
        result = UpdatableDocument(
            EncodedForest(kept, self.encoded.width, sort=False), self.stride)
        result.last_stats = UpdateStats(deleted_nodes=removed)
        return result

    def insert_child(self, parent_left: int, child_index: int,
                     trees: Forest | Node) -> "UpdatableDocument":
        """Insert ``trees`` as children of ``parent_left`` at ``child_index``.

        ``child_index`` counts existing children 0-based; anything past
        the end appends.
        """
        if isinstance(trees, Node):
            trees = (trees,)
        parent = self.find(parent_left)
        boundaries = self._child_boundaries(parent)
        index = min(child_index, len(boundaries) - 1)
        low, high = boundaries[index]
        return self._insert_between(low, high, trees)

    def insert_tree(self, position: int,
                    trees: Forest | Node) -> "UpdatableDocument":
        """Insert ``trees`` as new top-level trees at ``position``."""
        if isinstance(trees, Node):
            trees = (trees,)
        roots = self._top_level_roots()
        position = min(position, len(roots))
        low = roots[position - 1][2] if position > 0 else -1
        if position < len(roots):
            high = roots[position][1]
        else:
            high = max(self.encoded.width, low + 1)
            # Appending may extend past the current width; widen as needed.
        return self._insert_between(low, high, trees,
                                    allow_widening=position >= len(roots))

    # -- internals ----------------------------------------------------------------

    def _top_level_roots(self) -> list[IntervalTuple]:
        result = []
        max_right = -1
        for row in self.encoded.tuples:
            if row[1] > max_right:
                max_right = row[2]
                result.append(row)
        return result

    def _children_of(self, parent: IntervalTuple) -> list[IntervalTuple]:
        result = []
        max_right = parent[1]
        for row in self.encoded.tuples:
            if parent[1] < row[1] and row[2] < parent[2] and row[1] > max_right:
                max_right = row[2]
                result.append(row)
        return result

    def _child_boundaries(self, parent: IntervalTuple
                          ) -> list[tuple[int, int]]:
        """(low, high) exclusive endpoint bounds for each child slot."""
        children = self._children_of(parent)
        bounds = []
        previous = parent[1]
        for child in children:
            bounds.append((previous, child[1]))
            previous = child[2]
        bounds.append((previous, parent[2]))
        return bounds

    def _insert_between(self, low: int, high: int, trees: Forest,
                        allow_widening: bool = False) -> "UpdatableDocument":
        new_rows = _encode_flat(trees)
        needed = 2 * len(new_rows)
        if needed == 0:
            result = UpdatableDocument(self.encoded, self.stride)
            result.last_stats = UpdateStats()
            return result
        gap = high - low - 1
        if allow_widening:
            gap = max(gap, needed)  # free to extend width at the end
        if gap >= needed:
            placed = _place_rows(new_rows, low, high, allow_widening)
            rows = sorted(self.encoded.tuples + placed,
                          key=lambda row: row[1])
            width = max(self.encoded.width,
                        max(row[2] for row in placed) + 1)
            validate_encoding(rows, width)
            result = UpdatableDocument(EncodedForest(rows, width, sort=False),
                                       self.stride)
            result.last_stats = UpdateStats(inserted_nodes=len(new_rows))
            return result
        # Not enough room: spread the whole document, then retry (the
        # spread stride guarantees success for this insertion size).
        stride = max(self.stride, needed + 1)
        spread_doc = self.relabel(stride)
        mapping = _endpoint_mapping(self.encoded.tuples,
                                    spread_doc.encoded.tuples)
        retried = spread_doc._insert_between(
            mapping.get(low, -1 if low < 0 else low * stride + stride - 1),
            mapping.get(high, spread_doc.encoded.width),
            trees, allow_widening)
        retried.last_stats = UpdateStats(
            inserted_nodes=len(new_rows), relabeled=True)
        return retried

    def relabel(self, stride: int | None = None) -> "UpdatableDocument":
        """Re-encode with uniform slack (the paper's cited techniques all
        reduce to some scheme of this kind)."""
        stride = stride or self.stride
        rows, width = _spread_rows(_encode_flat(self.to_forest()), stride)
        result = UpdatableDocument(EncodedForest(rows, width, sort=False),
                                   max(self.stride, stride))
        result.last_stats = UpdateStats(relabeled=True)
        return result


def _encode_flat(trees: Forest) -> list[IntervalTuple]:
    """Tight DFS encoding rows for ``trees`` (counter starting at 0)."""
    from repro.encoding.interval import encode

    return list(encode(trees).tuples)


def _spread_rows(rows: list[IntervalTuple],
                 stride: int) -> tuple[list[IntervalTuple], int]:
    """Map endpoint ``e`` to ``e·stride + stride - 1`` (uniform slack)."""
    spread = [(s, l * stride + stride - 1, r * stride + stride - 1)
              for (s, l, r) in rows]
    width = (max((row[2] for row in spread), default=0)) + stride
    return spread, width


def _place_rows(rows: list[IntervalTuple], low: int, high: int,
                allow_widening: bool) -> list[IntervalTuple]:
    """Fit tight rows into the open interval (low, high)."""
    needed = 2 * len(rows)
    if allow_widening:
        high = max(high, low + needed + 1)
    gap = high - low - 1
    # Spread the 2k tight endpoints (0 … 2k-1) across the gap evenly.
    step = gap // needed

    def place(endpoint: int) -> int:
        return low + 1 + endpoint * step + (step - 1 if step > 1 else 0) * 0

    return [(s, place(l), place(r)) for (s, l, r) in rows]


def _endpoint_mapping(old_rows: list[IntervalTuple],
                      new_rows: list[IntervalTuple]) -> dict[int, int]:
    """Old endpoint → new endpoint after a relabel (same DFS order)."""
    mapping: dict[int, int] = {}
    for (old, new) in zip(old_rows, new_rows):
        mapping[old[1]] = new[1]
        mapping[old[2]] = new[2]
    return mapping
