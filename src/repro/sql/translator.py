"""Compositional translation of core expressions to a single SQL statement.

This is the Section 4.2 construction.  The translation context carries

* an **index CTE** holding the current environment indices ``I``, and
* a mapping from variables to :class:`~repro.sql.templates.Rel` — the CTE
  holding ``T_x`` plus its width ``w_x``.

Every core construct appends CTEs:

``XFn``
    one CTE per operator template (Section 4.2.1), lifted over environments
    with division-based re-blocking.

``let x = e in e'``
    no new CTEs — the environment mapping is extended (Section 4.2.2).

``where φ return e``
    a new index CTE keeping the indices satisfying the translated
    condition, plus one restriction CTE per variable free in the body
    (Section 4.2.3).

``for x in e do e'``
    a roots CTE over ``T_e``, the new index ``I' = {root left endpoints}``
    (these are exactly the paper's ``i·w_e + r.l`` in global coordinates),
    the re-blocked ``T'_x`` and ``T'_y`` CTEs, and finally the body's CTEs;
    the loop "exits" by just re-reading the body's CTE at width
    ``w_e · w_e'`` (Section 4.2.4).

The output is one statement::

    WITH c0_… AS (…), c1_… AS (…), … SELECT s, l, r FROM c…  ORDER BY l

Invariant maintained throughout: every emitted CTE only contains tuples
whose block index belongs to the context's index CTE, so block-deriving
templates never resurrect filtered-out environments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import (
    TranslationError,
    UnboundVariableError,
    WidthOverflowError,
)
from repro.sql import structural
from repro.sql.templates import Rel, build_template
from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
    free_variables,
)

#: Sentinel substituted with the environment index expression when a
#: condition predicate is placed inside an index-filter CTE.
ENV_SENTINEL = "__ENV__"

_EMPTY_SEQ_SQL = (
    "SELECT NULL AS env, NULL AS pos, NULL AS depth, NULL AS s WHERE 0"
)
_EMPTY_ROOTSEQ_SQL = (
    "SELECT NULL AS env, NULL AS root, NULL AS s, NULL AS pos, NULL AS depth WHERE 0"
)
_EMPTY_ROOTS_SQL = (
    "SELECT NULL AS env, NULL AS root, NULL AS s, NULL AS l, NULL AS r WHERE 0"
)


@dataclass(frozen=True)
class _Ctx:
    """Translation context: the current index CTE and variable bindings."""

    index: str
    vars: Mapping[str, Rel]


@dataclass
class TranslationResult:
    """A complete translation: one SQL statement plus metadata.

    ``sql`` is the single-statement form (one ``WITH`` chain).  ``ctes``
    and ``final_select`` expose the same query in pieces: SQLite clones CTE
    parse trees once per reference, so deeply composed queries can exceed
    its 65535-references-per-table limit in single-statement form; the
    backend then materializes each CTE as a temp table instead — the same
    query, staged (see :mod:`repro.sql.sqlite_backend`).
    """

    sql: str
    width: int
    cte_count: int
    #: The name of the CTE holding the final encoded result.
    result_table: str
    #: The (name, sql) CTE chain in dependency order.
    ctes: list[tuple[str, str]] = field(default_factory=list)
    #: The final SELECT reading ``result_table``.
    final_select: str = ""

    def __str__(self) -> str:
        return self.sql


class SQLTranslator:
    """Translate core expressions into single SQL statements.

    ``max_width`` bounds the per-expression block width; exceeding it
    raises :class:`WidthOverflowError`.  SQLite stores 64-bit integers and
    coordinates can exceed the width by one environment-index factor, so
    the backend uses a conservative default of ``2**61``.
    """

    def __init__(self, max_width: int | None = None,
                 stats_by_var: Mapping[str, object] | None = None):
        self.max_width = max_width
        #: Document variable → :class:`~repro.encoding.stats.DocumentStats`
        #: collected at shred time; used to emit ``where`` conjunctions
        #: cheapest-first (SQLite evaluates ``AND`` left to right, so the
        #: selective cheap predicate short-circuits the expensive one).
        self.stats_by_var = dict(stats_by_var or {})
        self._counter = itertools.count()
        self._ctes: list[tuple[str, str]] = []

    # -- public API ------------------------------------------------------------

    def translate(self, expr: CoreExpr,
                  documents: Mapping[str, tuple[str, int]]) -> TranslationResult:
        """Translate ``expr`` given base tables for its free variables.

        ``documents`` maps variable names to ``(table_name, width)`` pairs
        for relations already holding valid interval encodings in
        environment block 0.
        """
        self._counter = itertools.count()
        self._ctes = []
        index = self._add("init_idx", "SELECT 0 AS i")
        ctx = _Ctx(index, {name: Rel(table, width)
                           for name, (table, width) in documents.items()})
        result = self._translate(expr, ctx)
        body = ",\n".join(
            f"{name} AS MATERIALIZED (\n{sql}\n)" for name, sql in self._ctes
        )
        final_select = f"SELECT s, l, r FROM {result.table} ORDER BY l"
        sql = f"WITH {body}\n{final_select}"
        return TranslationResult(sql, result.width, len(self._ctes),
                                 result.table, list(self._ctes), final_select)

    # -- CTE plumbing ------------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        return f"c{next(self._counter)}_{hint}"

    def _add(self, hint: str, sql: str) -> str:
        name = self._fresh(hint)
        self._ctes.append((name, sql))
        return name

    def _check_width(self, width: int, context: str) -> int:
        if self.max_width is not None and width > self.max_width:
            raise WidthOverflowError(
                f"inferred width {width} for {context} exceeds the backend "
                f"limit {self.max_width}; the width of nested for-blocks "
                f"grows as a polynomial whose degree is the nesting depth "
                f"(Section 4.3) — reduce document size or nesting"
            )
        return width

    # -- expression translation ----------------------------------------------------

    def _translate(self, expr: CoreExpr, ctx: _Ctx) -> Rel:
        if isinstance(expr, Var):
            try:
                return ctx.vars[expr.name]
            except KeyError:
                raise UnboundVariableError(expr.name) from None
        if isinstance(expr, FnApp):
            return self._translate_fnapp(expr, ctx)
        if isinstance(expr, Let):
            value = self._translate(expr.value, ctx)
            inner = dict(ctx.vars)
            inner[expr.var] = value
            return self._translate(expr.body, _Ctx(ctx.index, inner))
        if isinstance(expr, Where):
            return self._translate_where(expr, ctx)
        if isinstance(expr, For):
            return self._translate_for(expr, ctx)
        raise TranslationError(f"cannot translate {type(expr).__name__}")

    def _translate_fnapp(self, expr: FnApp, ctx: _Ctx) -> Rel:
        args = [self._translate(arg, ctx) for arg in expr.args]
        result = build_template(expr.fn, dict(expr.params), args,
                                ctx.index, self._fresh)
        for name, sql in result.helpers:
            self._ctes.append((name, sql))
        self._check_width(result.width, f"XFn {expr.fn}")
        table = self._add(expr.fn, result.sql)
        return Rel(table, result.width)

    def _translate_where(self, expr: Where, ctx: _Ctx) -> Rel:
        predicate = self._translate_condition(
            self._order_conjunction(expr.condition), ctx)
        filtered = self._add(
            "where_idx",
            f"SELECT idx.i AS i FROM {ctx.index} idx\n"
            f" WHERE {predicate.replace(ENV_SENTINEL, 'idx.i')}",
        )
        inner_vars = dict(ctx.vars)
        for name in sorted(free_variables(expr.body)):
            rel = ctx.vars.get(name)
            if rel is None or rel.width == 0:
                continue
            table = self._add(
                "restrict",
                f"SELECT t.s, t.l, t.r FROM {rel.table} t\n"
                f" WHERE t.l / {rel.width} IN (SELECT i FROM {filtered})",
            )
            inner_vars[name] = Rel(table, rel.width)
        return self._translate(expr.body, _Ctx(filtered, inner_vars))

    def _translate_for(self, expr: For, ctx: _Ctx) -> Rel:
        source = self._translate(expr.source, ctx)
        if source.width == 0:
            empty = self._add("for_empty",
                              "SELECT NULL AS s, NULL AS l, NULL AS r WHERE 0")
            return Rel(empty, 0)
        ws = source.width
        roots = self._add(
            "for_roots",
            f"SELECT u.s, u.l, u.r FROM {source.table} u\n"
            f" WHERE NOT EXISTS (SELECT 1 FROM {source.table} v\n"
            f"                    WHERE v.l < u.l AND u.r < v.r\n"
            f"                      AND v.l / {ws} = u.l / {ws})",
        )
        # I' — one environment per iterated tree; the global left endpoint of
        # a root is the paper's i·w_e + r.l in one number, and it is unique
        # and document-ordered across all environments.
        index = self._add("for_idx", f"SELECT rt.l AS i FROM {roots} rt")
        bound = self._add(
            "for_var",
            f"SELECT u.s,\n"
            f"       u.l - (u.l / {ws}) * {ws} + rt.l * {ws} AS l,\n"
            f"       u.r - (u.l / {ws}) * {ws} + rt.l * {ws} AS r\n"
            f"  FROM {source.table} u\n"
            f"  JOIN {roots} rt ON rt.l <= u.l AND u.r <= rt.r",
        )
        inner_vars: dict[str, Rel] = {expr.var: Rel(bound, ws)}
        outer_needed = free_variables(expr.body) - {expr.var}
        for name in sorted(outer_needed):
            rel = ctx.vars.get(name)
            if rel is None:
                continue  # unbound — let the body translation raise
            if rel.width == 0:
                inner_vars[name] = rel
                continue
            wy = rel.width
            # Duplicate the outer binding once per new environment — this
            # cross product is exactly the data blow-up that makes naive
            # nested-loop evaluation quadratic.
            table = self._add(
                "for_outer",
                f"SELECT y.s,\n"
                f"       y.l - (y.l / {wy}) * {wy} + rt.l * {wy} AS l,\n"
                f"       y.r - (y.l / {wy}) * {wy} + rt.l * {wy} AS r\n"
                f"  FROM {rel.table} y\n"
                f"  JOIN {roots} rt ON y.l / {wy} = rt.l / {ws}",
            )
            inner_vars[name] = Rel(table, wy)
        for name, rel in ctx.vars.items():
            inner_vars.setdefault(name, rel)
        body = self._translate(expr.body, _Ctx(index, inner_vars))
        width = self._check_width(ws * body.width, f"for ${expr.var}")
        return Rel(body.table, width)

    # -- condition translation --------------------------------------------------------

    def _order_conjunction(self, condition: Condition) -> Condition:
        """Reassociate an ``And`` chain cheapest-conjunct-first.

        Conjunction is commutative and none of the translated predicates
        can error, so emission order is free to choose; ranking uses the
        same cost arithmetic as the engine planner
        (:func:`repro.compiler.cost.condition_weight`).  Without a
        statistics map the ranking still orders by condition class
        (occupancy checks before key-set comparisons).
        """
        if not isinstance(condition, And):
            return condition
        from repro.compiler.cost import condition_weight

        conjuncts: list[Condition] = []
        stack = [condition]
        while stack:
            current = stack.pop()
            if isinstance(current, And):
                stack.extend((current.right, current.left))
            else:
                conjuncts.append(current)
        ranked = sorted(conjuncts,
                        key=lambda c: condition_weight(c, self.stats_by_var))
        ordered = ranked[0]
        for conjunct in ranked[1:]:
            ordered = And(ordered, conjunct)
        return ordered

    def _translate_condition(self, condition: Condition, ctx: _Ctx) -> str:
        """Translate φ to a boolean SQL expression over ``__ENV__``."""
        if isinstance(condition, Empty):
            rel = self._translate(condition.expr, ctx)
            if rel.width == 0:
                return "(1 = 1)"
            return (
                f"NOT EXISTS (SELECT 1 FROM {rel.table}\n"
                f"             WHERE l / {rel.width} = {ENV_SENTINEL})"
            )
        if isinstance(condition, Equal):
            left = self._env_sequence(self._translate(condition.left, ctx))
            right = self._env_sequence(self._translate(condition.right, ctx))
            return structural.forest_equal_predicate(left, right, ENV_SENTINEL)
        if isinstance(condition, Less):
            left = self._env_sequence(self._translate(condition.left, ctx))
            right = self._env_sequence(self._translate(condition.right, ctx))
            return structural.forest_less_predicate(left, right, ENV_SENTINEL)
        if isinstance(condition, SomeEqual):
            return self._translate_some_equal(condition, ctx)
        if isinstance(condition, Not):
            return f"NOT ({self._translate_condition(condition.condition, ctx)})"
        if isinstance(condition, And):
            left = self._translate_condition(condition.left, ctx)
            right = self._translate_condition(condition.right, ctx)
            return f"(({left}) AND ({right}))"
        if isinstance(condition, Or):
            left = self._translate_condition(condition.left, ctx)
            right = self._translate_condition(condition.right, ctx)
            return f"(({left}) OR ({right}))"
        raise TranslationError(f"cannot translate {type(condition).__name__}")

    def _translate_some_equal(self, condition: SomeEqual, ctx: _Ctx) -> str:
        left = self._translate(condition.left, ctx)
        right = self._translate(condition.right, ctx)
        if left.width == 0 or right.width == 0:
            return "(1 = 0)"
        left_roots = self._add("se_roots",
                               structural.roots_id_sql(left.table, left.width))
        right_roots = self._add("se_roots",
                                structural.roots_id_sql(right.table, right.width))
        left_seq = self._add("se_seq",
                             structural.root_sequence_sql(left.table, left.width))
        right_seq = self._add("se_seq",
                              structural.root_sequence_sql(right.table, right.width))
        equal = structural.tree_equal_predicate(left_seq, right_seq,
                                                "sa.root", "sb.root")
        return (
            f"EXISTS (SELECT 1 FROM {left_roots} sa\n"
            f"          JOIN {right_roots} sb ON sb.env = {ENV_SENTINEL}\n"
            f"         WHERE sa.env = {ENV_SENTINEL}\n"
            f"           AND {equal})"
        )

    def _env_sequence(self, rel: Rel) -> str:
        if rel.width == 0:
            return self._add("seq_empty", _EMPTY_SEQ_SQL)
        return self._add("seq",
                         structural.env_sequence_sql(rel.table, rel.width))


def translate_query_with_stats(expr: CoreExpr,
                               documents: Mapping[str, tuple[str, int]],
                               stats_by_var: Mapping[str, object],
                               max_width: int | None = None,
                               ) -> TranslationResult:
    """Like :func:`translate_query`, ranking conjuncts on real statistics."""
    return SQLTranslator(max_width=max_width,
                         stats_by_var=stats_by_var).translate(expr, documents)


def translate_query(expr: CoreExpr,
                    documents: Mapping[str, tuple[str, int]],
                    max_width: int | None = None) -> TranslationResult:
    """Convenience wrapper around :class:`SQLTranslator`."""
    return SQLTranslator(max_width=max_width).translate(expr, documents)
