"""Per-category cost accounting for engine plans (behind Figure 10).

The paper breaks Q8's CPU time into *Paths*, *Join*, and *Construction*
(Figure 10).  :class:`EngineStats` attributes wall-clock time to those
categories with *exclusive* semantics: time spent inside a nested measure
is charged to the inner category only, so the per-category numbers sum to
the total evaluation time.

The accounting is built on the shared tracing primitive: every
:meth:`EngineStats.measure` opens a :class:`~repro.obs.trace.Span` tagged
with a ``category`` attribute, and the per-category seconds are derived
from the span tree.  The same derivation works on any trace whose spans
carry ``category`` attributes — :meth:`EngineStats.from_trace` rebuilds
the Figure 10 breakdown from a ``session.run(…, trace=True)`` span tree.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.obs.trace import Span, Tracer

PATHS = "paths"
JOIN = "join"
CONSTRUCTION = "construction"
OTHER = "other"

CATEGORIES = (PATHS, JOIN, CONSTRUCTION, OTHER)

#: Category of each XFn for Figure 10 attribution.
FUNCTION_CATEGORIES = {
    "children": PATHS,
    "select": PATHS,
    "textnodes": PATHS,
    "elementnodes": PATHS,
    "subtrees_dfs": PATHS,
    "data": PATHS,
    "roots": PATHS,
    "xnode": CONSTRUCTION,
    "concat": CONSTRUCTION,
    "text_const": CONSTRUCTION,
    "empty_forest": CONSTRUCTION,
    "count": CONSTRUCTION,
    "string_fn": CONSTRUCTION,
    "head": OTHER,
    "tail": OTHER,
    "reverse": OTHER,
    "distinct": OTHER,
    "sort": OTHER,
}


def category_seconds(roots: Iterable[Span]) -> dict[str, float]:
    """Exclusive per-category seconds from ``category``-tagged spans.

    Each tagged span contributes its duration minus the durations of the
    *nearest* tagged spans below it (untagged spans pass through), so the
    totals telescope: summing the result equals the summed duration of the
    top-level tagged spans.
    """
    totals: dict[str, float] = {}

    def nested_tagged_seconds(span: Span) -> float:
        total = 0.0
        for child in span.children:
            if "category" in child.attributes:
                total += child.seconds
            else:
                total += nested_tagged_seconds(child)
        return total

    def walk(span: Span) -> None:
        category = span.attributes.get("category")
        if category is not None:
            exclusive = span.seconds - nested_tagged_seconds(span)
            totals[category] = totals.get(category, 0.0) + exclusive
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    return totals


class EngineStats:
    """Exclusive wall-clock time and tuple counts per plan category.

    ``tracer`` — the span sink; defaults to a private
    :class:`~repro.obs.trace.Tracer`, but sharing a query tracer makes the
    category spans part of the full lifecycle trace.
    """

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.tuples: dict[str, int] = {}

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        """Charge the enclosed work to ``category`` (exclusive of children)."""
        with self.tracer.span(category, category=category):
            yield

    def add_tuples(self, category: str, count: int) -> None:
        """Record output cardinality for a category."""
        self.tuples[category] = self.tuples.get(category, 0) + count

    @property
    def seconds(self) -> dict[str, float]:
        """Exclusive seconds per category, derived from the span tree."""
        return category_seconds(self.tracer.roots)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-category share of total time (the Figure 10 percentages)."""
        seconds = self.seconds
        total = sum(seconds.values())
        if total <= 0:
            return {category: 0.0 for category in CATEGORIES}
        return {
            category: seconds.get(category, 0.0) / total
            for category in CATEGORIES
        }

    @classmethod
    def from_trace(cls, span: Span) -> "EngineStats":
        """Rebuild a Figure 10 breakdown from any query span tree."""
        stats = cls()
        stats.tracer.adopt(span)
        return stats

    def reset(self) -> None:
        self.tracer.reset()
        self.tuples.clear()

    def summary(self) -> str:
        """A one-line human-readable breakdown."""
        fractions = self.fractions()
        parts = [
            f"{category}={fractions[category] * 100:.0f}%"
            for category in CATEGORIES
            if fractions[category] > 0
        ]
        return f"total={self.total_seconds:.3f}s " + " ".join(parts)
