"""Convenience XPath evaluation over forests (no query machinery needed).

For callers who just want to point into a document —

    >>> from repro.xml.xpath import xpath
    >>> xpath(doc, "site/people/person/@id")

— this wraps the Figure 2 operator algebra directly: each slash-separated
step is a ``children`` + node-test pass over the forest, entirely
in-memory, no parsing/lowering/encoding involved.  Supported steps:

* ``tag`` — child elements named ``tag``
* ``@name`` — attributes named ``name``
* ``*`` — all child elements
* ``text()`` — child text nodes
* ``//tag`` (as a step prefix) — descendants named ``tag``
* a leading ``/`` is optional and means the same thing (steps always
  navigate downward from the given forest's trees)

Returns the result forest; :func:`xpath_values` additionally atomizes to
plain strings.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.xml import operations as ops
from repro.xml.forest import Forest, Node


def xpath(trees: Forest | Node, path: str) -> Forest:
    """Evaluate a simple downward path against a forest."""
    if isinstance(trees, Node):
        trees = (trees,)
    current: Forest = trees
    for axis, test in _parse_steps(path):
        scope = ops.children(current)
        if axis == "descendant":
            scope = ops.subtrees_dfs(scope)
        if test == "text()":
            current = ops.textnodes(scope)
        elif test == "*":
            current = tuple(t for t in scope if t.is_element())
        elif test.startswith("@"):
            current = ops.select(test, scope)
        else:
            current = ops.select(f"<{test}>", scope)
    return current


def xpath_values(trees: Forest | Node, path: str) -> list[str]:
    """Like :func:`xpath` but returning string values of the result trees."""
    return [tree.string_value() for tree in xpath(trees, path)]


def xpath_first(trees: Forest | Node, path: str) -> Node | None:
    """The first tree of the result, or ``None``."""
    result = xpath(trees, path)
    return result[0] if result else None


def _parse_steps(path: str) -> list[tuple[str, str]]:
    if not path or path.strip() != path:
        raise ReproError(f"malformed path {path!r}")
    # Mark '//' boundaries, then split on single slashes: a segment with
    # the marker prefix is a descendant step.
    marker = "\x00"
    normalized = path.replace("//", f"/{marker}")
    if normalized.startswith("/"):
        normalized = normalized[1:]
    steps: list[tuple[str, str]] = []
    for raw in normalized.split("/"):
        axis = "child"
        if raw.startswith(marker):
            axis = "descendant"
            raw = raw[1:]
        if not raw:
            raise ReproError(f"malformed path {path!r}")
        if raw not in ("*", "text()") and not raw.replace("_", "").replace(
                "-", "").replace("@", "").replace(".", "").isalnum():
            raise ReproError(f"unsupported step {raw!r} in {path!r}")
        steps.append((axis, raw))
    return steps
