"""Streaming iterator operators must equal their eager counterparts."""

import pytest

from repro.encoding.interval import encode
from repro.engine import iterators as it
from repro.engine import operators as ops
from repro.xml.text_parser import parse_forest

FORESTS = [
    "<a/>",
    "<a/><b/><c/>",
    "<a><b><c/></b><d/></a>",
    "<a id='1'><n>x</n></a><b>y</b>",
    "<p>one</p>two<p>three</p>",
]


@pytest.fixture(params=range(len(FORESTS)))
def encoded(request):
    trees = parse_forest(FORESTS[request.param])
    enc = encode(trees)
    return list(enc.tuples), max(enc.width, 1)


class TestRootsIterator:
    def test_fetch_protocol(self, encoded):
        rel, _w = encoded
        iterator = it.RootsIterator(rel)
        fetched = []
        while True:
            row = iterator.fetch()
            if row is None:
                break
            fetched.append(row)
        assert fetched == ops.roots(rel)

    def test_fetch_none_is_sticky(self):
        iterator = it.RootsIterator([])
        assert iterator.fetch() is None
        assert iterator.fetch() is None

    def test_iterable_protocol(self, encoded):
        rel, _w = encoded
        assert list(it.RootsIterator(rel)) == ops.roots(rel)


class TestStreamsMatchEager:
    def test_roots(self, encoded):
        rel, _w = encoded
        assert list(it.roots_stream(rel)) == ops.roots(rel)

    def test_children(self, encoded):
        rel, _w = encoded
        assert list(it.children_stream(rel)) == ops.children(rel)

    def test_select(self, encoded):
        rel, _w = encoded
        assert (list(it.select_label_stream(rel, "<a>"))
                == ops.select_label(rel, "<a>"))

    def test_textnodes(self, encoded):
        rel, _w = encoded
        assert list(it.textnodes_stream(rel)) == ops.textnode_trees(rel)

    def test_elementnodes(self, encoded):
        rel, _w = encoded
        assert list(it.elementnodes_stream(rel)) == ops.elementnode_trees(rel)

    def test_head_tail(self, encoded):
        rel, width = encoded
        assert list(it.head_stream(rel, width)) == ops.head(rel, width)
        assert list(it.tail_stream(rel, width)) == ops.tail(rel, width)

    def test_data(self, encoded):
        rel, width = encoded
        assert list(it.data_stream(rel, width)) == ops.data(rel, width)


class TestPipeline:
    def test_fused_path(self, figure1_doc):
        enc = encode((figure1_doc,))
        rel, width = list(enc.tuples), enc.width
        pipeline = it.path_pipeline(rel, [
            ("children", None),
            ("select", "<people>"),
            ("children", None),
            ("select", "<person>"),
            ("children", None),
            ("select", "<name>"),
            ("children", None),
            ("text", None),
        ], width)
        labels = [row[0] for row in pipeline]
        assert labels == ["Jaak Tempesti", "Cong Rosca"]

    def test_pipeline_is_lazy(self):
        consumed = []

        def tracked(rows):
            for row in rows:
                consumed.append(row)
                yield row

        rel = list(encode(parse_forest("<a><b/></a><c><d/></c>")).tuples)
        pipeline = it.path_pipeline(tracked(rel), [("children", None)], 8)
        next(pipeline)  # pull one output tuple only
        assert len(consumed) < len(rel)

    def test_head_step(self, figure1_doc):
        enc = encode((figure1_doc,))
        pipeline = it.path_pipeline(list(enc.tuples), [
            ("children", None),
            ("select", "<people>"),
            ("children", None),
            ("head", None),
        ], enc.width)
        rows = list(pipeline)
        assert rows[0][0] == "<person>"
        assert len(rows) == 11  # first person's subtree only

    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            list(it.path_pipeline([], [("frobnicate", None)], 4))

    def test_select_requires_label(self):
        with pytest.raises(ValueError):
            list(it.path_pipeline([], [("select", None)], 4))
