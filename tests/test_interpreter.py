"""Unit tests for the Figure 3 reference interpreter."""

import pytest

from repro.errors import UnboundVariableError, UnknownFunctionError
from repro.xml.forest import element, text
from repro.xml.text_parser import parse_forest
from repro.xquery.ast import (
    And,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
)
from repro.xquery.interpreter import Interpreter, evaluate, evaluate_condition


def f(source: str):
    return parse_forest(source)


class TestBasicRules:
    def test_variable_lookup(self):
        assert evaluate(Var("x"), {"x": f("<a/>")}) == f("<a/>")

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError) as excinfo:
            evaluate(Var("missing"), {})
        assert excinfo.value.name == "missing"

    def test_function_application(self):
        expr = FnApp("children", (Var("x"),))
        assert evaluate(expr, {"x": f("<a><b/></a>")}) == f("<b/>")

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            evaluate(FnApp("bogus", ()), {})

    def test_let_binding(self):
        expr = Let("y", FnApp("children", (Var("x"),)), Var("y"))
        assert evaluate(expr, {"x": f("<a><b/></a>")}) == f("<b/>")

    def test_let_shadows(self):
        expr = Let("x", FnApp("empty_forest"), Var("x"))
        assert evaluate(expr, {"x": f("<a/>")}) == ()

    def test_let_does_not_leak(self):
        env = {"x": f("<a/>")}
        evaluate(Let("y", Var("x"), Var("y")), env)
        assert "y" not in env


class TestWhere:
    def test_true_condition(self):
        expr = Where(Empty(FnApp("empty_forest")), Var("x"))
        assert evaluate(expr, {"x": f("<a/>")}) == f("<a/>")

    def test_false_condition_yields_empty(self):
        expr = Where(Not(Empty(FnApp("empty_forest"))), Var("x"))
        assert evaluate(expr, {"x": f("<a/>")}) == ()


class TestFor:
    def test_iterates_top_level_trees(self):
        expr = For("t", Var("x"), FnApp("xnode", (Var("t"),),
                                        (("label", "<w>"),)))
        result = evaluate(expr, {"x": f("<a/><b/>")})
        assert result == f("<w><a/></w><w><b/></w>")

    def test_empty_source(self):
        expr = For("t", FnApp("empty_forest"), Var("t"))
        assert evaluate(expr, {}) == ()

    def test_binds_single_trees(self):
        # The body sees $t as a singleton forest per iteration.
        expr = For("t", Var("x"), FnApp("count", (Var("t"),)))
        result = evaluate(expr, {"x": f("<a/><b/><c/>")})
        assert result == (text("1"), text("1"), text("1"))

    def test_concatenation_preserves_order(self):
        expr = For("t", Var("x"), FnApp("children", (Var("t"),)))
        result = evaluate(expr, {"x": f("<a><p>1</p></a><b><q>2</q></b>")})
        assert [tree.label for tree in result] == ["<p>", "<q>"]

    def test_nested_for_cross_product_order(self):
        inner = For("y", Var("b"), FnApp("concat", (Var("x"), Var("y"))))
        expr = For("x", Var("a"), inner)
        result = evaluate(expr, {"a": f("<i/><j/>"), "b": f("<p/><q/>")})
        labels = [tree.label for tree in result]
        assert labels == ["<i>", "<p>", "<i>", "<q>", "<j>", "<p>", "<j>", "<q>"]

    def test_variable_restored_after_loop(self):
        env = {"x": f("<a/>"), "t": f("<orig/>")}
        expr = For("t", Var("x"), Var("t"))
        evaluate(expr, env)
        assert env["t"] == f("<orig/>")


class TestConditions:
    def test_equal(self):
        assert evaluate_condition(
            Equal(Var("x"), Var("y")),
            {"x": f("<a><b/></a>"), "y": f("<a><b/></a>")},
        )

    def test_equal_is_structural_not_identity(self):
        x = (element("a", (text("v"),)),)
        y = (element("a", (text("v"),)),)
        assert evaluate_condition(Equal(Var("x"), Var("y")), {"x": x, "y": y})

    def test_some_equal(self):
        env = {"x": f("<a/><b/>"), "y": f("<b/><c/>")}
        assert evaluate_condition(SomeEqual(Var("x"), Var("y")), env)

    def test_some_equal_no_overlap(self):
        env = {"x": f("<a/>"), "y": f("<b/>")}
        assert not evaluate_condition(SomeEqual(Var("x"), Var("y")), env)

    def test_some_equal_empty_side(self):
        env = {"x": (), "y": f("<a/>")}
        assert not evaluate_condition(SomeEqual(Var("x"), Var("y")), env)

    def test_less(self):
        env = {"x": f("<a/>"), "y": f("<b/>")}
        assert evaluate_condition(Less(Var("x"), Var("y")), env)
        assert not evaluate_condition(Less(Var("y"), Var("x")), env)

    def test_empty(self):
        assert evaluate_condition(Empty(FnApp("empty_forest")), {})
        assert not evaluate_condition(Empty(Var("x")), {"x": f("<a/>")})

    def test_boolean_combinators(self):
        true = Empty(FnApp("empty_forest"))
        false = Not(true)
        assert evaluate_condition(And(true, true), {})
        assert not evaluate_condition(And(true, false), {})
        assert evaluate_condition(Or(false, true), {})
        assert not evaluate_condition(Or(false, false), {})


class TestTick:
    def test_tick_called(self):
        calls = []
        interpreter = Interpreter(tick=lambda: calls.append(1))
        interpreter.evaluate(For("t", Var("x"), Var("t")),
                             {"x": f("<a/><b/>")})
        # At least one tick per expression node and per iteration.
        assert len(calls) >= 4


class TestDenotationalEquations:
    """Direct transcriptions of the Figure 3 semantic equations."""

    def test_for_equation(self):
        """[[for x in e do e']]E = concat of per-tree body evaluations."""
        env = {"src": f("<a>1</a><b>2</b><c>3</c>")}
        body = FnApp("children", (Var("v"),))
        loop = For("v", Var("src"), body)
        expected = ()
        interpreter = Interpreter()
        for tree in env["src"]:
            expected += interpreter.evaluate(body, {"v": (tree,)})
        assert evaluate(loop, env) == expected

    def test_where_equation(self):
        env = {"x": f("<a/>")}
        condition = Empty(Var("x"))
        expr = Where(condition, Var("x"))
        expected = env["x"] if evaluate_condition(condition, env) else ()
        assert evaluate(expr, env) == expected

    def test_let_equation(self):
        env = {"x": f("<a/>")}
        expr = Let("y", Var("x"), FnApp("concat", (Var("y"), Var("x"))))
        assert evaluate(expr, env) == env["x"] + env["x"]
