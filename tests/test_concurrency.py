"""Concurrent query serving: one session, many threads.

Covers the RWLock / ThreadLocalPool primitives, concurrent ``run`` across
every builtin backend, update-vs-query consistency (a racing update yields
the old or the new answer, never a mix), ``run_many`` semantics, and that
metric totals add up under contention.  The CI race-hunting job loops this
file with ``PYTHONDEVMODE=1``; keep individual tests fast.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.concurrency import RWLock, ThreadLocalPool
from repro.errors import DocumentNotFoundError, ReproError
from repro.session import XQuerySession

ALL_BACKENDS = ("engine", "interpreter", "naive", "sqlite", "dbapi")

DOC_OLD = "<site>" + "".join(f"<a>{i}</a>" for i in range(4)) + "</site>"
DOC_NEW = "<site>" + "".join(f"<b>{i}</b>" for i in range(6)) + "</site>"
QUERY_ALL = 'document("d.xml")/site'
QUERIES = (
    'document("d.xml")/site',
    'document("d.xml")//a',
    'for $x in document("d.xml")//a return <hit>{$x}</hit>',
)

#: Generous join timeout: a worker that has not finished by then is hung.
JOIN = 60.0


def run_threads(count, target):
    """Run ``target(index)`` on ``count`` threads; re-raise any failure."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 — reported below
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN)
    assert not any(thread.is_alive() for thread in threads), "worker hung"
    if errors:
        raise errors[0]


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=JOIN)

        def reader(_index: int) -> None:
            with lock.read_locked():
                inside.wait()  # both threads hold the read side at once

        run_threads(2, reader)

    def test_reentrant_read(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.read_held

    def test_read_under_write(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.read_locked():
                assert lock.write_held

    def test_write_is_exclusive(self):
        lock = RWLock()
        state = {"value": 0}

        def writer(_index: int) -> None:
            for _ in range(200):
                with lock.write_locked():
                    snapshot = state["value"]
                    state["value"] = snapshot + 1

        run_threads(4, writer)
        assert state["value"] == 800

    def test_upgrade_raises(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(ReproError):
                lock.acquire_write()

    def test_write_reentrance_raises(self):
        lock = RWLock()
        with lock.write_locked():
            with pytest.raises(ReproError):
                lock.acquire_write()

    def test_writers_not_starved(self):
        """A pending writer gets in even while readers keep arriving."""
        lock = RWLock()
        wrote = threading.Event()

        def reader(_index: int) -> None:
            for _ in range(100):
                with lock.read_locked():
                    pass
                if wrote.is_set():
                    return

        def writer(_index: int) -> None:
            with lock.write_locked():
                wrote.set()

        run_threads_targets = [reader, reader, reader, writer]

        def dispatch(index: int) -> None:
            run_threads_targets[index](index)

        run_threads(4, dispatch)
        assert wrote.is_set()


class TestThreadLocalPool:
    def test_one_resource_per_thread(self):
        pool = ThreadLocalPool(lambda: object())
        seen: dict[int, object] = {}

        def worker(index: int) -> None:
            first = pool.get()
            assert pool.get() is first  # stable within a thread
            seen[index] = first

        run_threads(3, worker)
        assert len({id(resource) for resource in seen.values()}) == 3
        assert pool.size == 3

    def test_close_all_closes_everything(self):
        closed: list[int] = []
        pool = ThreadLocalPool(lambda: object(),
                               close=lambda r: closed.append(id(r)))
        run_threads(3, lambda _index: pool.get())
        pool.close_all()
        pool.close_all()  # idempotent
        assert len(closed) == 3
        assert pool.closed

    def test_get_after_close_raises(self):
        pool = ThreadLocalPool(lambda: object(), close=lambda r: None)
        pool.get()
        pool.close_all()
        with pytest.raises(ReproError):
            pool.get()


@pytest.fixture()
def session():
    with XQuerySession() as active:
        active.add_document("d.xml", DOC_OLD)
        yield active


class TestConcurrentRun:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_hammer_matches_serial(self, session, backend):
        expected = {query: session.run(query, backend=backend).to_xml()
                    for query in QUERIES}

        def worker(index: int) -> None:
            for query in QUERIES:
                result = session.run(query, backend=backend)
                assert result.to_xml() == expected[query]

        run_threads(6, worker)

    def test_mixed_backends_share_one_session(self, session):
        expected = session.run(QUERY_ALL).to_xml()

        def worker(index: int) -> None:
            backend = ALL_BACKENDS[index % len(ALL_BACKENDS)]
            assert session.run(QUERY_ALL,
                               backend=backend).to_xml() == expected

        run_threads(len(ALL_BACKENDS) * 2, worker)

    def test_dbapi_runs_on_foreign_threads(self, session):
        """Pre-fix, sqlite3 raised ProgrammingError off the opening thread."""
        expected = session.run(QUERY_ALL, backend="dbapi").to_xml()

        def worker(_index: int) -> None:
            assert session.run(QUERY_ALL,
                               backend="dbapi").to_xml() == expected

        run_threads(4, worker)

    def test_query_metrics_add_up(self, session):
        before = session.metrics.get(
            "repro_session_queries_total").value(backend="engine")

        def worker(_index: int) -> None:
            for _ in range(5):
                session.run(QUERY_ALL, backend="engine")

        run_threads(4, worker)
        after = session.metrics.get(
            "repro_session_queries_total").value(backend="engine")
        assert after - before == 20


class TestUpdateConsistency:
    @pytest.mark.parametrize("backend", ["engine", "sqlite", "dbapi"])
    def test_replacement_racing_queries_is_atomic(self, session, backend):
        """A query racing a document swap sees old or new — never a mix."""
        old = session.run(QUERY_ALL, backend=backend).to_xml()
        stop = threading.Event()
        observed: set[str] = set()

        def reader(_index: int) -> None:
            while not stop.is_set():
                observed.add(session.run(QUERY_ALL, backend=backend).to_xml())

        def swapper(_index: int) -> None:
            try:
                for flip in range(6):
                    session.add_document(
                        "d.xml", DOC_NEW if flip % 2 == 0 else DOC_OLD)
            finally:
                stop.set()

        targets = [reader, reader, reader, swapper]
        run_threads(4, lambda index: targets[index](index))
        new = session.run(QUERY_ALL, backend=backend).to_xml()
        with XQuerySession() as reference:
            reference.add_document("d.xml", DOC_NEW)
            new_expected = reference.run(QUERY_ALL,
                                         backend=backend).to_xml()
        assert observed <= {old, new_expected}
        assert new == old  # six flips end on DOC_OLD

    def test_apply_update_racing_queries(self, session):
        """An in-place update is atomic with respect to running queries."""
        names = 'document("d.xml")//a'
        old = session.run(names, backend="sqlite").to_xml()
        updatable = session.updatable("d.xml")
        victim = next(row for row in updatable.encoded.tuples
                      if row[0] == "<a>")
        updated = updatable.delete_subtree(victim[1])
        stop = threading.Event()
        observed: set[str] = set()

        def reader(_index: int) -> None:
            while not stop.is_set():
                observed.add(session.run(names, backend="sqlite").to_xml())

        def updater(_index: int) -> None:
            try:
                session.apply_update("d.xml", updated)
            finally:
                stop.set()

        targets = [reader, reader, updater]
        run_threads(3, lambda index: targets[index](index))
        new = session.run(names, backend="sqlite").to_xml()
        assert new != old
        assert observed <= {old, new}

    def test_invalidations_count_each_backend_once(self, session):
        for backend in ALL_BACKENDS:
            session.run(QUERY_ALL, backend=backend)
        invalidations = session.metrics.get(
            "repro_session_invalidations_total")
        deltas = session.metrics.get("repro_session_delta_updates_total")

        def delta_total() -> float:
            return sum(value for _, value in deltas.samples())

        before = invalidations.value()
        before_deltas = delta_total()
        session.apply_update("d.xml",
                             session.updatable("d.xml"))
        # Every live backend is accounted for exactly once: either it
        # absorbed the update as a delta or it was invalidated/closed.
        absorbed = delta_total() - before_deltas
        invalidated = invalidations.value() - before
        assert absorbed + invalidated == len(ALL_BACKENDS)
        assert absorbed >= 1  # at least the engine backend splices

    @pytest.mark.parametrize("backend", ("engine", "sqlite"))
    def test_delta_hammer_readers_never_see_half_a_delta(self, backend):
        """Mixed read/write load over the incremental commit path.

        An updater commits a chain of single-subtree inserts while
        readers hammer the same document.  Every observed answer must be
        one of the committed snapshots (never a blend of two), and each
        reader's sequence of snapshots must be monotone — the write lock
        makes commits linearizable, so a reader can never travel back to
        an older snapshot after seeing a newer one.
        """
        from repro.xml.forest import element, text

        steps = 6
        with XQuerySession() as session:
            session.add_document("d.xml", DOC_OLD)
            query = 'document("d.xml")//a'
            session.run(query, backend=backend)
            snapshots = [session.run(query, backend=backend).to_xml()]
            updates = []
            doc = session.updatable("d.xml")
            with XQuerySession() as reference:
                reference.add_document("d.xml", DOC_OLD)
                for step in range(steps):
                    site = next(row for row in doc.encoded.tuples
                                if row[0] == "<site>")
                    doc = doc.insert_child(
                        site[1], 0, [element("a", [text(f"n{step}")])])
                    updates.append(doc)
                    reference.add_document("d.xml", doc.to_forest())
                    snapshots.append(
                        reference.run(query, backend=backend).to_xml())
            assert len(set(snapshots)) == steps + 1
            rank = {xml: index for index, xml in enumerate(snapshots)}
            stop = threading.Event()
            histories: dict[int, list[str]] = {}

            def reader(index: int) -> None:
                history: list[str] = []
                while not stop.is_set():
                    history.append(
                        session.run(query, backend=backend).to_xml())
                histories[index] = history

            def updater(index: int) -> None:
                try:
                    for updated in updates:
                        session.apply_update("d.xml", updated)
                        time.sleep(0.005)  # let readers overlap commits
                finally:
                    stop.set()
                histories[index] = []

            targets = [reader, reader, reader, updater]
            run_threads(4, lambda index: targets[index](index))
            final = session.run(query, backend=backend).to_xml()
            assert final == snapshots[-1]
            for history in histories.values():
                ranks = [rank[xml] for xml in history]  # KeyError = torn read
                assert ranks == sorted(ranks)

    def test_full_reencode_invalidates_each_backend_once(self, session):
        for backend in ALL_BACKENDS:
            session.run(QUERY_ALL, backend=backend)
        counter = session.metrics.get("repro_session_invalidations_total")
        before = counter.value()
        session.apply_update("d.xml", session.updatable("d.xml"),
                             incremental=False)
        assert counter.value() - before == len(ALL_BACKENDS)


class TestRunMany:
    def test_results_in_input_order(self, session):
        batch = list(QUERIES) * 3
        expected = [session.run(query).to_xml() for query in batch]
        results = session.run_many(batch, max_workers=4)
        assert [result.to_xml() for result in results] == expected

    def test_empty_batch(self, session):
        assert session.run_many([]) == []

    def test_matches_serial_on_relational_backends(self, session):
        for backend in ("sqlite", "dbapi"):
            serial = [session.run(query, backend=backend).to_xml()
                      for query in QUERIES]
            batch = session.run_many(QUERIES, max_workers=3, backend=backend)
            assert [result.to_xml() for result in batch] == serial

    def test_first_error_in_input_order_wins(self, session):
        batch = [QUERY_ALL,
                 'document("missing.xml")/x',  # raises DocumentNotFound
                 QUERY_ALL]
        with pytest.raises(DocumentNotFoundError):
            session.run_many(batch, max_workers=3)

    def test_return_errors_keeps_slots(self, session):
        batch = [QUERY_ALL, 'document("missing.xml")/x', QUERY_ALL]
        results = session.run_many(batch, max_workers=3, return_errors=True)
        assert len(results) == 3
        assert isinstance(results[1], DocumentNotFoundError)
        assert results[0].to_xml() == results[2].to_xml()

    def test_pool_gauges_settle_to_zero(self, session):
        session.run_many(list(QUERIES) * 2, max_workers=2)
        assert session.metrics.get(
            "repro_session_pool_queued").value() == 0
        assert session.metrics.get(
            "repro_session_pool_active").value() == 0
        assert session.metrics.get(
            "repro_session_pool_workers").value() == 2

    def test_pool_gauges_settle_when_workers_raise(self, session):
        # Every query fails: the queued→active hand-off and the active
        # decrement live in ``finally``, so raising workers must not
        # strand either gauge.
        batch = ['document("missing.xml")/x'] * 6
        results = session.run_many(batch, max_workers=3, return_errors=True)
        assert all(isinstance(result, DocumentNotFoundError)
                   for result in results)
        assert session.metrics.get(
            "repro_session_pool_queued").value() == 0
        assert session.metrics.get(
            "repro_session_pool_active").value() == 0

    def test_pool_gauges_settle_when_batch_cancelled(self, session):
        # Regression: a future cancelled before a worker picks it up
        # never runs ``work()``, so its queued-gauge decrement must
        # happen in ``_settle_cancelled`` — this used to leak.
        from repro.errors import QueryCancelledError
        from repro.resilience import FaultPlan, inject_faults

        plan = FaultPlan(sleep=time.sleep).slow_on("execute", 0.2)
        with inject_faults("engine", plan):
            results = session.run_many(list(QUERIES) * 4, max_workers=2,
                                       batch_deadline=0.1,
                                       return_errors=True)
        assert any(isinstance(result, QueryCancelledError)
                   for result in results)
        assert session.metrics.get(
            "repro_session_pool_queued").value() == 0
        assert session.metrics.get(
            "repro_session_pool_active").value() == 0

    def test_pool_persists_across_batches(self, session):
        session.run_many(QUERIES, max_workers=2)
        first = session._executor
        session.run_many(QUERIES, max_workers=2)
        assert session._executor is first  # warm pool reused
        session.run_many(QUERIES, max_workers=3)
        assert session._executor is not first  # resized → rebuilt

    def test_usable_after_close(self, session):
        session.run_many(QUERIES, max_workers=2)
        session.close()
        results = session.run_many(QUERIES, max_workers=2)
        assert len(results) == len(QUERIES)

    def test_traced_batch_has_span_per_query(self, session):
        results = session.run_many(QUERIES, max_workers=2, trace=True)
        tracer = results[0].tracer
        assert tracer is results[1].tracer  # one tracer for the batch
        roots = [root for root in tracer.roots if root.name == "batch.query"]
        assert len(roots) == len(QUERIES)
        assert sorted(root.attributes["index"] for root in roots) == [0, 1, 2]
        for result in results:
            assert result.trace is not None
            assert result.trace.name == "query"

    def test_guards_are_per_query(self, session):
        # A generous per-query budget: every query fits individually, so
        # a (buggy) shared guard accumulating across queries would trip.
        results = session.run_many(list(QUERIES) * 4, max_workers=4,
                                   budget=100_000)
        assert len(results) == 12

    def test_fallback_composes(self):
        from repro.backends.registry import reset_breakers
        from repro.resilience import FaultPlan, inject_faults

        reset_breakers()
        plan = FaultPlan().fail_on("execute", calls=(1, 2))
        try:
            with inject_faults("sqlite", plan):
                with XQuerySession() as faulty:
                    faulty.add_document("d.xml", DOC_OLD)
                    results = faulty.run_many(
                        [QUERY_ALL, QUERY_ALL], max_workers=2,
                        backend="sqlite", fallback=("engine",))
            for result in results:
                assert result.backend == "engine"
                assert result.degraded
        finally:
            reset_breakers()  # don't leak sqlite failures to other tests


class TestBackendClose:
    @pytest.mark.parametrize("backend", ["sqlite", "dbapi"])
    def test_close_releases_every_threads_connection(self, session, backend):
        run_threads(3, lambda _index: session.run(QUERY_ALL, backend=backend))
        target = session.backend_instance(backend)
        pool = target._pool
        assert pool.size >= 3
        target.close()
        target.close()  # idempotent
        assert pool.closed
        with pytest.raises(ReproError):
            target.execute(None)  # type: ignore[arg-type]

    def test_concurrent_close_is_safe(self, session):
        session.run(QUERY_ALL, backend="sqlite")
        target = session.backend_instance("sqlite")
        run_threads(4, lambda _index: target.close())
        assert target._pool.closed


class TestConcurrentThroughputBench:
    def test_measure_reports_consistent_shape(self):
        from repro.bench import measure_concurrent_throughput

        result = measure_concurrent_throughput(scale=0.0002, workers=2,
                                               repeat=1)
        assert result.batch_size == 4
        assert result.workers == 2
        assert result.serial_seconds > 0
        assert result.concurrent_seconds > 0
        assert result.speedup > 0
        assert "workers" in result.display
