"""Figure 8 — XMark Q13 timings (result construction, Section 6.1).

The paper's finding: Q13 has no joins, so every strategy scales roughly
linearly and the dynamic-interval engine is competitive with (2003's)
native XML systems.  These benchmarks compare the evaluators at a fixed
small scale; the scale sweep behind the EXPERIMENTS.md table is produced
by ``python -m repro.bench.run_experiments --figure fig8``.
"""


def test_q13_naive(benchmark, q13_runners):
    result = benchmark(q13_runners.naive)
    assert result


def test_q13_di_nlj(benchmark, q13_runners):
    result = benchmark(q13_runners.di_nlj)
    assert result


def test_q13_di_msj(benchmark, q13_runners):
    result = benchmark(q13_runners.di_msj)
    assert result


def test_q13_results_agree(q13_runners):
    """All systems construct the identical document fragment."""
    assert (q13_runners.naive() == q13_runners.di_nlj()
            == q13_runners.di_msj())
