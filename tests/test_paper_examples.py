"""Byte-for-byte reproduction of the paper's worked examples.

* Figure 4 — the DFS-counter interval encoding of the Figure 1 sample;
* Figure 5 — ``I`` and ``T_person`` for the initial environment of
  ``document("auction.xml")/site/people/person``;
* Figure 7 — ``I'`` and ``T'_p`` after entering the ``for`` loop
  (Example 4.3), with width 86;
* Example 1.1 / Q8 — the running example's final answer.
"""

from repro.api import compile_xquery, run_xquery
from repro.compiler.plan import JoinStrategy
from repro.compiler.planner import compile_plan
from repro.encoding.interval import encode
from repro.engine import operators as ops
from repro.engine.evaluator import DIEngine, EnvSeq
from repro.xmark.queries import FIGURE1_SAMPLE

PATH_QUERY = 'document("auction.xml")/site/people/person'


def _base_env(figure1_doc):
    from repro.xquery.lowering import document_forest
    encoded = encode(document_forest((figure1_doc,)))
    return encoded, EnvSeq([0], {"doc:auction.xml":
                                 (list(encoded.tuples), encoded.width)})


class TestFigure4:
    def test_exact_rows(self, figure1_doc):
        encoded = encode((figure1_doc,))
        expected_prefix = [
            ("<site>", 0, 85),
            ("<people>", 1, 46),
            ("<person>", 2, 23),
            ("@id", 3, 6),
            ("person0", 4, 5),
            ("<name>", 7, 10),
            ("Jaak Tempesti", 8, 9),
        ]
        assert encoded.tuples[:7] == expected_prefix

    def test_width_86(self, figure1_doc):
        assert encode((figure1_doc,)).width == 86

    def test_closed_auction_rows(self, figure1_doc):
        encoded = encode((figure1_doc,))
        by_label = {s: (l, r) for (s, l, r) in encoded.tuples}
        assert by_label["<closed_auctions>"] == (47, 84)
        assert by_label["<closed_auction>"] == (48, 83)


class TestFigure5:
    def test_person_table(self, figure1_doc):
        _, seq = _base_env(figure1_doc)
        compiled = compile_xquery(PATH_QUERY)
        plan = compile_plan(compiled.core, JoinStrategy.MSJ,
                            base_vars=compiled.documents.values())
        engine = DIEngine()
        engine._base = seq
        rel, width = engine.evaluate(plan, seq)
        engine._base = None
        # The document node wrapper shifts the whole Figure 4 encoding by
        # one position, so person0 spans [3, 24] in wrapper coordinates;
        # strip the shift to compare against the printed figure.
        local = [(s, l - 1, r - 1) for (s, l, r) in rel]
        assert local[0] == ("<person>", 2, 23)
        assert ("@id", 3, 6) in local
        assert ("person0", 4, 5) in local
        assert ("Jaak Tempesti", 8, 9) in local
        assert ("<person>", 24, 45) in local
        assert ("http://www.washington.edu/~Rosca", 42, 43) in local
        assert len(local) == 22  # 11 nodes per person


class TestFigure7:
    def test_for_expansion(self, figure1_doc):
        """Example 4.3: entering the for loop re-blocks each person."""
        # Build T_person at exactly the paper's coordinates (no document
        # wrapper — the figure works from the raw Figure 4 encoding).
        encoded = encode((figure1_doc,))
        person_rel = ops.select_label(
            ops.children(ops.select_label(
                ops.children(ops.select_label(
                    list(encoded.tuples), "<site>")),
                "<people>")),
            "<person>")
        width = 86
        engine = DIEngine()
        roots = ops.roots(person_rel)
        index = [row[1] for row in roots]
        assert index == [2, 24]  # the paper's I' = {2, 24}
        expanded = engine._expand_variable(person_rel, width, roots)
        rows = {(s, l, r) for (s, l, r) in expanded}
        # Paper Figure 7, environment i = 2:
        assert ("<person>", 174, 195) in rows
        assert ("@id", 175, 178) in rows
        assert ("person0", 176, 177) in rows
        assert ("Jaak Tempesti", 180, 181) in rows
        # Paper Figure 7, environment i = 24:
        assert ("<person>", 2088, 2109) in rows
        assert ("Cong Rosca", 2094, 2095) in rows
        assert ("http://www.washington.edu/~Rosca", 2106, 2107) in rows

    def test_blocks_bracket_persons(self, figure1_doc):
        """Each new environment block [i·w, (i+1)·w) brackets its person."""
        encoded = encode((figure1_doc,))
        person_rel = ops.select_label(
            ops.children(ops.select_label(
                ops.children(ops.select_label(
                    list(encoded.tuples), "<site>")),
                "<people>")),
            "<person>")
        engine = DIEngine()
        roots = ops.roots(person_rel)
        expanded = engine._expand_variable(person_rel, 86, roots)
        for s, l, r in expanded:
            block = l // 86
            assert block in (2, 24)
            assert block * 86 <= l < r < (block + 1) * 86


class TestExample11:
    """The running example: Q8 on the Figure 1 data."""

    QUERY = """
    for $p in document("auction.xml")/site/people/person
    let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
              where $t/buyer/@person = $p/@id
              return $t
    where not(empty($a))
    return <item person="{$p/name/text()}">{count($a)}</item>
    """

    def test_answer_on_figure1(self):
        result = run_xquery(self.QUERY, {"auction.xml": FIGURE1_SAMPLE})
        assert result.to_xml() == '<item person="Cong Rosca">1</item>'

    def test_all_backends_agree(self):
        outputs = set()
        for backend, strategy in (("interpreter", "msj"), ("engine", "nlj"),
                                  ("engine", "msj"), ("sqlite", "msj")):
            result = run_xquery(self.QUERY, {"auction.xml": FIGURE1_SAMPLE},
                                backend=backend, strategy=strategy)
            outputs.add(result.to_xml())
        assert outputs == {'<item person="Cong Rosca">1</item>'}
