"""Section 4.3 ablation: compile-time width growth and its cost.

The translation's widths are fixed at compile time: a ``for`` multiplies
the source and body widths, so the largest block width is a polynomial in
the document width whose degree is the query's nesting depth.  These
benchmarks (a) measure that inference is cheap, and (b) chart the growth
that eventually overflows 64-bit backends (the ``OV`` failure mode the
SQLite backend reports).
"""

import pytest

from repro.api import compile_xquery
from repro.sql.widths import infer_width, width_report
from repro.xmark.queries import QUERIES
from repro.xquery.ast import FnApp, For, Var


def _nested_loops(levels: int):
    """for t1 in d do … for tN in d do concat(t1, tN)-ish nesting."""
    body = FnApp("children", (Var(f"t{levels}"),))
    expr = body
    source = Var("d")
    for level in range(levels, 0, -1):
        expr = For(f"t{level}", source, expr)
    return expr


@pytest.mark.parametrize("query", sorted(QUERIES))
def test_width_inference_speed(benchmark, query):
    compiled = compile_xquery(QUERIES[query])
    env = {var: 1 << 20 for var in compiled.documents.values()}
    width = benchmark(infer_width, compiled.core, env)
    assert width > 0


def test_width_degree_matches_nesting():
    """Width of an N-deep loop nest is doc_width^(N+…): degree = depth."""
    doc_width = 1000
    widths = [infer_width(_nested_loops(levels), {"d": doc_width})
              for levels in (1, 2, 3)]
    assert widths[0] == doc_width * doc_width
    assert widths[1] == doc_width * widths[0]
    assert widths[2] == doc_width * widths[1]


def test_q9_width_fits_sqlite_at_bench_scales():
    """At our benchmark scales Q9 stays under the 2^61 SQLite cap."""
    from repro.encoding.interval import encode
    from repro.xmark.generator import generate_document
    from repro.xquery.lowering import document_forest

    compiled = compile_xquery(QUERIES["Q9"])
    document = generate_document(0.001, seed=42)
    doc_width = encode(document_forest(document)).width
    width = infer_width(
        compiled.core,
        {var: doc_width for var in compiled.documents.values()})
    assert width < 2 ** 61


def test_q9_width_overflows_sqlite_at_paper_scales():
    """At the paper's sf=1 (111 MB) Q9's width exceeds 64-bit SQLite —
    the Section 4.3 trade-off of fixed-width machine integers."""
    compiled = compile_xquery(QUERIES["Q9"])
    paper_sf1_width = 2 * 2_000_000  # ~2M nodes at scale factor 1
    width = infer_width(
        compiled.core,
        {var: paper_sf1_width for var in compiled.documents.values()})
    assert width > 2 ** 61


def test_width_report_entries(benchmark):
    compiled = compile_xquery(QUERIES["Q8"])
    env = {var: 86 for var in compiled.documents.values()}
    report = benchmark(width_report, compiled.core, env)
    assert report.max_width >= 86
