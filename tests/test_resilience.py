"""Resilience-layer tests: guards, retries, breakers, faults, degradation.

All timing is driven by injected fake clocks, sleep recorders, and
scripted faults — the suite never sleeps and never depends on the
wall clock.
"""

import sqlite3
import types

import pytest

from repro.backends.registry import (
    _REGISTRY,
    backend_breaker,
    registered_backends,
    reset_breakers,
)
from repro.errors import (
    CircuitOpenError,
    DocumentNotFoundError,
    ExecutionError,
    QueryTimeoutError,
    ReproError,
    ResourceBudgetError,
    TransientBackendError,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    CircuitBreaker,
    FaultPlan,
    QueryGuard,
    ResourceBudget,
    RetryPolicy,
    coerce_budget,
    inject_faults,
)
from repro.session import XQuerySession


class FakeClock:
    """Monotonic fake: advances ``step`` per read, plus manual jumps."""

    def __init__(self, step: float = 0.0, start: float = 0.0):
        self.step = step
        self.time = start

    def __call__(self) -> float:
        self.time += self.step
        return self.time

    def advance(self, seconds: float) -> None:
        self.time += seconds


DOC = "<a>" + "<b><c>x</c></b>" * 40 + "</a>"
#: A doc/query pair heavy enough in SQLite VM opcodes that the guard's
#: progress handler (every 4000 opcodes) fires many times per statement.
BIG_DOC = "<a>" + "<b><c>x</c></b>" * 200 + "</a>"
QUERY = 'for $x in document("a.xml")/a/b return $x/c'
CROSS = ('for $x in document("a.xml")/a/b '
         'for $y in document("a.xml")/a/b return $y')

ALL_BACKENDS = ("engine", "interpreter", "naive", "sqlite", "dbapi")


@pytest.fixture(autouse=True)
def _clean_breakers():
    reset_breakers()
    yield
    reset_breakers()


@pytest.fixture
def session():
    with XQuerySession() as s:
        s.add_document("a.xml", DOC)
        yield s


@pytest.fixture
def big_session():
    with XQuerySession() as s:
        s.add_document("a.xml", BIG_DOC)
        yield s


# -- deadlines on every backend ----------------------------------------------


class TestDeadlines:
    DEADLINE = 0.05
    STEP = 0.02

    def _guard(self) -> QueryGuard:
        return QueryGuard(deadline=self.DEADLINE, clock=FakeClock(self.STEP),
                          check_interval=1)

    @pytest.mark.parametrize("backend", ["engine", "interpreter", "naive"])
    def test_cooperative_backends_time_out(self, session, backend):
        with pytest.raises(QueryTimeoutError) as exc:
            session.run(QUERY, backend=backend, guard=self._guard())
        error = exc.value
        assert error.deadline == self.DEADLINE
        # Detection is prompt: within ~2x the deadline in fake time.
        assert error.elapsed <= 2 * self.DEADLINE
        assert error.backend == backend

    @pytest.mark.parametrize("backend", ["sqlite", "dbapi"])
    def test_sql_backends_time_out(self, big_session, backend):
        with pytest.raises(QueryTimeoutError) as exc:
            big_session.run(CROSS, backend=backend, guard=self._guard())
        error = exc.value
        assert error.deadline == self.DEADLINE
        assert error.elapsed <= 2 * self.DEADLINE

    def test_dbapi_interrupted_mid_statement(self, big_session):
        """The progress handler aborts one long statement in flight."""
        guard = self._guard()
        with pytest.raises(QueryTimeoutError) as exc:
            big_session.run(CROSS, backend="dbapi", guard=guard)
        # The driver's "interrupted" is chained, never surfaced raw.
        assert isinstance(exc.value.__cause__, sqlite3.OperationalError)
        assert guard.pending_error is None  # consumed, not leaked

    def test_timeout_never_falls_back(self, session):
        """Deadlines are request-level: no degradation to fallbacks."""
        with pytest.raises(QueryTimeoutError):
            session.run(QUERY, backend="engine", guard=self._guard(),
                        fallback=("interpreter", "naive"))

    def test_timeout_counted(self, session):
        with pytest.raises(QueryTimeoutError):
            session.run(QUERY, backend="engine", guard=self._guard())
        counter = session.metrics.get("repro_resilience_timeouts_total")
        assert counter.value(backend="engine") == 1


# -- resource budgets ---------------------------------------------------------


class TestBudgets:
    def test_tuple_budget_on_engine(self, session):
        with pytest.raises(ResourceBudgetError) as exc:
            session.run(QUERY, budget=5)
        assert exc.value.resource == "tuples"
        assert exc.value.limit == 5

    def test_tuple_budget_on_sqlite(self, session):
        with pytest.raises(ResourceBudgetError):
            session.run(QUERY, backend="sqlite", budget=3)

    def test_width_budget_on_engine(self, session):
        budget = ResourceBudget(max_width=2)
        with pytest.raises(ResourceBudgetError) as exc:
            session.run(QUERY, budget=budget)
        assert exc.value.resource == "width"

    def test_budget_violations_never_fall_back(self, session):
        with pytest.raises(ResourceBudgetError):
            session.run(QUERY, budget=5, fallback=("interpreter",))

    def test_generous_budget_passes(self, session):
        result = session.run(QUERY, budget=10_000, deadline=60.0)
        assert len(result.forest) == 40
        assert result.backend == "engine"
        assert not result.degraded

    def test_coerce_budget(self):
        assert coerce_budget(None) == ResourceBudget()
        assert coerce_budget(7) == ResourceBudget(max_tuples=7)
        budget = ResourceBudget(max_envs=3)
        assert coerce_budget(budget) is budget
        with pytest.raises(ExecutionError):
            coerce_budget("lots")
        with pytest.raises(ExecutionError):
            coerce_budget(True)


# -- the guard itself ---------------------------------------------------------


class TestQueryGuard:
    def test_disabled_guard_is_inert(self):
        guard = QueryGuard()
        assert not guard.enabled
        for _ in range(1000):
            guard.tick()
        guard.check()

    def test_tick_reads_clock_once_per_stride(self):
        clock = FakeClock()
        reads = []

        def counting_clock():
            reads.append(1)
            return clock()

        guard = QueryGuard(deadline=100.0, clock=counting_clock,
                           check_interval=8)
        guard.start()
        baseline = len(reads)
        for _ in range(64):
            guard.tick()
        assert len(reads) - baseline == 64 // 8

    def test_progress_handler_stores_typed_error(self):
        guard = QueryGuard(deadline=0.01, clock=FakeClock(0.02))
        guard.start()
        handler = guard.as_progress_handler()
        assert handler() == 1  # abort requested
        assert isinstance(guard.pending_error, QueryTimeoutError)
        taken = guard.take_pending()
        assert isinstance(taken, QueryTimeoutError)
        assert guard.pending_error is None

    def test_progress_handler_passes_when_healthy(self):
        guard = QueryGuard(deadline=100.0, clock=FakeClock(0.001))
        guard.start()
        assert guard.as_progress_handler()() == 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ExecutionError):
            QueryGuard(deadline=0.0)
        with pytest.raises(ExecutionError):
            QueryGuard(deadline=1.0, check_interval=0)


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_schedule_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                             jitter=0.0)
        assert list(policy.delays()) == [0.05, 0.1, 0.2]

    def test_seeded_jitter_is_reproducible(self):
        first = list(RetryPolicy(max_attempts=5).delays())
        second = list(RetryPolicy(max_attempts=5).delays())
        assert first == second
        assert first != list(RetryPolicy(max_attempts=5, jitter=0.0).delays())

    def test_retries_then_succeeds(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0,
                             sleep=sleeps.append)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientBackendError("blip")
            return "answer"

        assert policy.call(flaky) == "answer"
        assert len(attempts) == 3
        assert sleeps == [0.05, 0.1]

    def test_attempts_exhausted_raises_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

        def always():
            raise TransientBackendError("down")

        with pytest.raises(TransientBackendError):
            policy.call(always)

    def test_non_retryable_raises_immediately(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=5, sleep=sleeps.append)
        calls = []

        def hard_failure():
            calls.append(1)
            raise ExecutionError("broken SQL")

        with pytest.raises(ExecutionError):
            policy.call(hard_failure)
        assert len(calls) == 1
        assert sleeps == []

    def test_never_sleeps_past_the_deadline(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0,
                             sleep=sleeps.append)
        guard = QueryGuard(deadline=1.0, clock=FakeClock(0.001))
        guard.start()

        def always():
            raise TransientBackendError("down")

        with pytest.raises(TransientBackendError):
            policy.call(always, guard=guard)
        assert sleeps == []  # 10s backoff >= ~1s remaining: give up now

    def test_observer_sees_each_backoff(self):
        observed = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0,
                             sleep=lambda _s: None)

        def always():
            raise TransientBackendError("down")

        with pytest.raises(TransientBackendError):
            policy.call(always,
                        on_retry=lambda *args: observed.append(args))
        assert [(attempt, delay) for attempt, delay, _e in observed] == \
            [(1, 0.05), (2, 0.1)]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExecutionError):
            RetryPolicy(jitter=2.0)


# -- circuit breaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker("db", failure_threshold=3,
                                 clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker("db", failure_threshold=1,
                                 recovery_seconds=30.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after == pytest.approx(30.0)
        clock.advance(31.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()        # the single probe
        assert not breaker.allow()    # concurrent probes rejected
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("db", failure_threshold=1,
                                 recovery_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_transitions_observed(self):
        transitions = []
        clock = FakeClock()
        breaker = CircuitBreaker("db", failure_threshold=1,
                                 recovery_seconds=5.0, clock=clock,
                                 on_transition=lambda *args:
                                 transitions.append(args))
        breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_success()
        assert transitions == [("db", CLOSED, OPEN),
                               ("db", OPEN, HALF_OPEN),
                               ("db", HALF_OPEN, CLOSED)]

    def test_registry_owns_one_breaker_per_backend(self):
        first = backend_breaker("sqlite", failure_threshold=2)
        again = backend_breaker("sqlite", failure_threshold=99)
        assert again is first          # config applies on first creation only
        assert first.failure_threshold == 2
        reset_breakers("sqlite")
        fresh = backend_breaker("sqlite")
        assert fresh is not first


# -- fault injection ----------------------------------------------------------


class TestFaultPlan:
    def test_fails_on_scripted_calls_only(self):
        plan = FaultPlan().fail_on("execute", calls=(2,))
        plan.apply("execute")
        with pytest.raises(TransientBackendError):
            plan.apply("execute")
        plan.apply("execute")
        assert plan.call_count("execute") == 3
        assert [(m, n) for m, n, _e in plan.raised] == [("execute", 2)]

    def test_delay_recorded_through_injected_sleep(self):
        slept: list[float] = []
        plan = FaultPlan(sleep=slept.append).delay_on("prepare", calls=1,
                                                      seconds=0.25)
        plan.apply("prepare")
        assert slept == [0.25]
        assert plan.delays == [("prepare", 0.25)]

    def test_seeded_random_faults_reproduce(self):
        def pattern(seed: int) -> list[int]:
            plan = FaultPlan(seed=seed).fail_randomly("execute", 0.5)
            hits = []
            for call in range(1, 21):
                try:
                    plan.apply("execute")
                except TransientBackendError:
                    hits.append(call)
            return hits

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_inject_faults_restores_registry(self, session):
        original = _REGISTRY["engine"]
        with inject_faults("engine", FaultPlan()):
            assert _REGISTRY["engine"] is not original
        assert _REGISTRY["engine"] is original

    def test_injected_fault_surfaces_through_session(self):
        plan = FaultPlan().fail_on("execute", calls=1)
        with inject_faults("engine", plan):
            with XQuerySession() as session:
                session.add_document("a.xml", DOC)
                with pytest.raises(TransientBackendError):
                    session.run(QUERY)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            with inject_faults("no-such-backend", FaultPlan()):
                pass  # pragma: no cover


# -- graceful degradation: the full story -------------------------------------


class TestDegradation:
    def test_retry_breaker_fallback_and_recovery(self):
        """The acceptance scenario: sqlite fails twice -> retry with
        backoff -> circuit opens -> fallback answers -> open circuit is
        skipped -> half-open probe closes it again.  All observable in
        spans and metrics; no wall-clock sleeps anywhere."""
        breaker_clock = FakeClock()
        breaker = backend_breaker("sqlite", failure_threshold=2,
                                  recovery_seconds=30.0,
                                  clock=breaker_clock)
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=2, base_delay=0.05, jitter=0.0,
                             sleep=sleeps.append)
        plan = FaultPlan().fail_on("execute", calls=(1, 2))
        with inject_faults("sqlite", plan):
            with XQuerySession() as session:
                session.add_document("a.xml", DOC)

                # Run 1: two sqlite attempts fail, breaker opens, the
                # engine fallback answers the query.
                result = session.run(QUERY, backend="sqlite",
                                     fallback=("engine",), retry=policy,
                                     trace=True)
                assert result.backend == "engine"
                assert result.degraded
                assert [d.backend for d in result.degradations] == ["sqlite"]
                assert result.degradations[0].kind == "TransientBackendError"
                assert sleeps == [0.05]  # exactly one backoff, recorded
                assert breaker.state == OPEN
                assert plan.call_count("execute") == 2

                # The span tree shows the whole story: two sqlite
                # attempts, the retry backoff, then the engine attempt.
                names = [(span.name, span.attributes.get("backend"))
                         for span in result.trace.walk()
                         if span.name in ("attempt", "retry")]
                assert names == [("attempt", "sqlite"), ("retry", "sqlite"),
                                 ("attempt", "sqlite"), ("attempt", "engine")]
                assert result.trace.attributes["degraded"] is True

                metrics = session.metrics
                assert metrics.get("repro_resilience_retries_total") \
                    .value(backend="sqlite") == 1
                assert metrics.get("repro_resilience_fallbacks_total") \
                    .value(source="sqlite", target="engine") == 1
                assert metrics.get("repro_resilience_breaker_state") \
                    .value(backend="sqlite") == STATE_VALUES[OPEN]

                # Run 2: the open circuit is skipped without touching
                # sqlite at all; the answer degrades immediately.
                result2 = session.run(QUERY, backend="sqlite",
                                      fallback=("engine",), retry=policy)
                assert result2.backend == "engine"
                assert result2.degradations[0].kind == "CircuitOpenError"
                assert plan.call_count("execute") == 2  # untouched

                # Run 3: after the recovery window the half-open probe
                # succeeds (the fault script only failed calls 1-2), so
                # the circuit closes and sqlite answers again.
                breaker_clock.advance(31.0)
                result3 = session.run(QUERY, backend="sqlite",
                                      fallback=("engine",), retry=policy)
                assert result3.backend == "sqlite"
                assert not result3.degraded
                assert breaker.state == CLOSED
                assert session.metrics.get("repro_resilience_breaker_state") \
                    .value(backend="sqlite") == STATE_VALUES[CLOSED]

                # Every run returned the same (correct) forest.
                assert result.forest == result2.forest == result3.forest
                assert len(result.forest) == 40

    def test_chain_exhausted_raises_last_error(self, session):
        plan = FaultPlan().fail_on("execute", calls=(1, 2, 3),
                                   error=ExecutionError("hard down"))
        with inject_faults("engine", plan):
            with XQuerySession() as inner:
                inner.add_document("a.xml", DOC)
                with pytest.raises(ExecutionError):
                    inner.run(QUERY, backend="engine", fallback=())

    def test_compile_errors_do_not_degrade(self, session):
        with pytest.raises(ReproError):
            session.run("for $x in", fallback=("interpreter",))


# -- typed errors -------------------------------------------------------------


class TestTypedErrors:
    def test_document_not_found_lists_registered(self, session):
        with pytest.raises(DocumentNotFoundError) as exc:
            session.document("missing.xml")
        assert exc.value.uri == "missing.xml"
        assert "a.xml" in str(exc.value)
        assert isinstance(exc.value, ReproError)

    def test_locked_database_is_transient(self):
        from repro.sql.sqlite_backend import wrap_driver_error

        error = wrap_driver_error(
            sqlite3.OperationalError("database is locked"),
            "INSERT INTO doc_0 VALUES (?, ?, ?)")
        assert isinstance(error, TransientBackendError)
        assert "INSERT INTO doc_0" in str(error)
        assert error.statement.startswith("INSERT")

    def test_driver_errors_wrapped_with_statement(self):
        from repro.sql.sqlite_backend import SQLiteDatabase

        database = SQLiteDatabase()
        bogus = types.SimpleNamespace(sql="SELECT * FROM no_such_table")
        with pytest.raises(ExecutionError) as exc:
            database.run_translation(bogus, mode="single")
        assert not isinstance(exc.value, sqlite3.Error)
        assert "no_such_table" in str(exc.value)
        assert isinstance(exc.value.__cause__, sqlite3.Error)
        database.close()

    def test_long_statements_truncated(self):
        from repro.sql.sqlite_backend import wrap_driver_error

        statement = "SELECT " + ", ".join(f"col_{i}" for i in range(200))
        error = wrap_driver_error(sqlite3.OperationalError("syntax error"),
                                  statement)
        assert error.statement == statement  # full text kept on the attr
        assert "…]" in str(error)            # message shows it truncated
        assert len(str(error)) < len(statement)

    def test_timeout_error_carries_context(self):
        error = QueryTimeoutError(1.5, 3.2, backend="sqlite")
        assert error.deadline == 1.5
        assert error.elapsed == 3.2
        assert error.backend == "sqlite"
        assert isinstance(error, ExecutionError)


# -- overhead -----------------------------------------------------------------


class TestOverhead:
    def test_unguarded_runs_take_the_fast_path(self, session, monkeypatch):
        """No guard, tracer, or metrics => the observed evaluation path
        (where guard accounting lives) is never entered at all."""
        from repro.engine.evaluator import DIEngine

        def forbidden(self, node, seq):  # pragma: no cover - must not run
            raise AssertionError("observed path used on an unguarded run")

        monkeypatch.setattr(DIEngine, "_evaluate_observed", forbidden)
        result = session.run(QUERY)
        assert len(result.forest) == 40

    def test_guarded_runs_use_the_observed_path(self, session, monkeypatch):
        from repro.engine.evaluator import DIEngine

        calls = []
        original = DIEngine._evaluate_observed

        def counting(self, node, seq):
            calls.append(1)
            return original(self, node, seq)

        monkeypatch.setattr(DIEngine, "_evaluate_observed", counting)
        session.run(QUERY, budget=10_000)
        assert calls

    def test_cli_flags_reach_the_guard(self, tmp_path, capsys):
        from repro.__main__ import main

        doc = tmp_path / "a.xml"
        doc.write_text(DOC)
        code = main([QUERY, "--doc", f"a.xml={doc}",
                     "--max-tuples", "1"])
        assert code == 1
        assert "budget" in capsys.readouterr().err

    def test_cli_fallback_degrades(self, tmp_path, capsys):
        from repro.__main__ import main

        doc = tmp_path / "w.xml"
        doc.write_text("<a><a><a><a/></a></a></a>")
        query = 'document("w.xml")' + "//a" * 5  # overflows 2**61 on sqlite
        code = main([query, "--doc", f"w.xml={doc}", "--backend", "sqlite",
                     "--fallback", "engine"])
        captured = capsys.readouterr()
        assert code == 0
        assert "WidthOverflowError" in captured.err
        assert "'engine'" in captured.err
