"""Tests for core-AST traversal helpers and renderers."""

import pytest

from repro.xquery.ast import (
    And,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
    condition_expressions,
    condition_free_variables,
    condition_to_str,
    core_to_str,
    iter_subexpressions,
)


@pytest.fixture
def sample():
    return For(
        "x", Var("doc"),
        Let("y", FnApp("children", (Var("x"),)),
            Where(And(Empty(Var("y")), Not(Equal(Var("x"), Var("doc")))),
                  FnApp("concat", (Var("x"), Var("y"))))))


class TestIterSubexpressions:
    def test_visits_everything(self, sample):
        nodes = list(iter_subexpressions(sample))
        variables = [n.name for n in nodes if isinstance(n, Var)]
        assert sorted(variables) == ["doc", "doc", "x", "x", "x", "y", "y"]

    def test_includes_condition_expressions(self, sample):
        nodes = list(iter_subexpressions(sample))
        assert any(isinstance(n, FnApp) and n.fn == "concat" for n in nodes)
        # Equal's operands live inside the condition and must be reached.
        assert sum(1 for n in nodes
                   if isinstance(n, Var) and n.name == "doc") == 2

    def test_single_node(self):
        assert list(iter_subexpressions(Var("a"))) == [Var("a")]


class TestConditionHelpers:
    def test_condition_expressions_all_shapes(self):
        condition = Or(
            And(Empty(Var("a")), SomeEqual(Var("b"), Var("c"))),
            Not(Less(Var("d"), Var("e"))),
        )
        names = sorted(expr.name
                       for expr in condition_expressions(condition))
        assert names == ["a", "b", "c", "d", "e"]

    def test_condition_free_variables(self):
        condition = And(Empty(FnApp("children", (Var("a"),))),
                        Equal(Var("b"), FnApp("empty_forest")))
        assert condition_free_variables(condition) == {"a", "b"}

    def test_unknown_condition_rejected(self):
        class Rogue:
            pass

        with pytest.raises(TypeError):
            list(condition_expressions(Rogue()))


class TestRenderers:
    def test_core_to_str_shapes(self, sample):
        text = core_to_str(sample)
        assert "for $x in" in text
        assert "let $y =" in text
        assert "where" in text
        assert "concat(" in text

    def test_condition_to_str_all_kinds(self):
        condition = Or(
            And(Empty(Var("a")), Not(Equal(Var("b"), Var("c")))),
            SomeEqual(Var("d"), FnApp("text_const", (),
                                      (("value", "k"),))),
        )
        text = condition_to_str(condition)
        for piece in ("empty($a)", "not(equal($b, $c))", "some-equal",
                      "or", "and"):
            assert piece in text

    def test_less_rendering(self):
        assert condition_to_str(Less(Var("a"), Var("b"))) == \
            "less($a, $b)"

    def test_fn_params_rendered(self):
        text = core_to_str(FnApp("select", (Var("x"),),
                                 (("label", "<a>"),)))
        assert "select[label='<a>']" in text
