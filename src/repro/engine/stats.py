"""Per-category cost accounting for engine plans (behind Figure 10).

The paper breaks Q8's CPU time into *Paths*, *Join*, and *Construction*
(Figure 10).  :class:`EngineStats` attributes wall-clock time to those
categories with *exclusive* semantics: time spent inside a nested measure
is charged to the inner category only, so the per-category numbers sum to
the total evaluation time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

PATHS = "paths"
JOIN = "join"
CONSTRUCTION = "construction"
OTHER = "other"

CATEGORIES = (PATHS, JOIN, CONSTRUCTION, OTHER)

#: Category of each XFn for Figure 10 attribution.
FUNCTION_CATEGORIES = {
    "children": PATHS,
    "select": PATHS,
    "textnodes": PATHS,
    "elementnodes": PATHS,
    "subtrees_dfs": PATHS,
    "data": PATHS,
    "roots": PATHS,
    "xnode": CONSTRUCTION,
    "concat": CONSTRUCTION,
    "text_const": CONSTRUCTION,
    "empty_forest": CONSTRUCTION,
    "count": CONSTRUCTION,
    "string_fn": CONSTRUCTION,
    "head": OTHER,
    "tail": OTHER,
    "reverse": OTHER,
    "distinct": OTHER,
    "sort": OTHER,
}


@dataclass
class EngineStats:
    """Exclusive wall-clock time and tuple counts per plan category."""

    seconds: dict[str, float] = field(default_factory=dict)
    tuples: dict[str, int] = field(default_factory=dict)
    _stack: list[list] = field(default_factory=list)

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        """Charge the enclosed work to ``category`` (exclusive of children)."""
        frame = [category, 0.0]  # accumulated child time to subtract
        start = time.perf_counter()
        self._stack.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            exclusive = elapsed - frame[1]
            self.seconds[category] = self.seconds.get(category, 0.0) + exclusive
            if self._stack:
                self._stack[-1][1] += elapsed

    def add_tuples(self, category: str, count: int) -> None:
        """Record output cardinality for a category."""
        self.tuples[category] = self.tuples.get(category, 0) + count

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-category share of total time (the Figure 10 percentages)."""
        total = self.total_seconds
        if total <= 0:
            return {category: 0.0 for category in CATEGORIES}
        return {
            category: self.seconds.get(category, 0.0) / total
            for category in CATEGORIES
        }

    def reset(self) -> None:
        self.seconds.clear()
        self.tuples.clear()
        self._stack.clear()

    def summary(self) -> str:
        """A one-line human-readable breakdown."""
        fractions = self.fractions()
        parts = [
            f"{category}={fractions[category] * 100:.0f}%"
            for category in CATEGORIES
            if fractions[category] > 0
        ]
        return f"total={self.total_seconds:.3f}s " + " ".join(parts)
