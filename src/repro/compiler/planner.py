"""Compile core expressions to DI-engine physical plans.

``compile_plan(expr, strategy, base_vars)`` walks the core AST:

* under :attr:`JoinStrategy.NLJ` every ``for`` becomes a naive
  :class:`~repro.compiler.plan.ForNode` expansion — the nested-loop plans
  the paper's competitors are limited to;
* under :attr:`JoinStrategy.MSJ` each ``for`` is first offered to the
  Section 5 decorrelation (:mod:`repro.compiler.decorrelate`); matches
  become :class:`~repro.compiler.plan.JoinForNode` merge joins, the rest
  fall back to naive expansion.

After compilation the planner computes, bottom-up, the set of outer
variables each iteration actually needs (``required_outer``), so that
environment expansion copies exactly the bindings the body reads —
``JoinForNode`` sources and inner keys read the base environment and are
excluded, which is where the asymptotic savings come from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import PlanError
from repro.compiler import cost, decorrelate
from repro.compiler import joingraph  # module-style: joingraph imports us back
from repro.compiler.plan import (
    iter_plan,
    AndCond,
    CondPlan,
    EmptyCond,
    EqualCond,
    FnNode,
    ForNode,
    JoinForNode,
    JoinStrategy,
    LessCond,
    LetNode,
    NotCond,
    OrCond,
    PlanNode,
    SomeEqualCond,
    VarNode,
    WhereNode,
)
from repro.xquery.ast import (
    And,
    Condition,
    CoreExpr,
    Empty,
    Equal,
    FnApp,
    For,
    Less,
    Let,
    Not,
    Or,
    SomeEqual,
    Var,
    Where,
    free_variables,
)


def compile_plan(expr: CoreExpr, strategy: JoinStrategy = JoinStrategy.MSJ,
                 base_vars: Iterable[str] = (),
                 decorrelate_loops: bool = True,
                 match_fn=None) -> PlanNode:
    """Compile ``expr`` for the given join strategy.

    ``base_vars`` are the variables bound in the initial environment
    (document variables); they gate which loop sources are eligible for
    base-environment evaluation.  ``decorrelate_loops=False`` disables the
    Section 5 rewrite entirely (every loop becomes the naive environment
    expansion, which duplicates outer bindings per iteration) — the
    ablation knob behind ``benchmarks/bench_ablation_decorrelation.py``.
    ``match_fn`` overrides the decorrelation matcher (same signature as
    :func:`repro.compiler.decorrelate.match_join`); the staged pipeline
    uses it to time the ``decorrelate`` pass without changing behaviour.
    """
    compiler = _Compiler(strategy, frozenset(base_vars), decorrelate_loops,
                         match_fn=match_fn)
    return compiler.compile(expr)


class _Compiler:
    def __init__(self, strategy: JoinStrategy, base_vars: frozenset[str],
                 decorrelate_loops: bool = True, match_fn=None):
        self.strategy = strategy
        self.base_vars = base_vars
        self.decorrelate_loops = decorrelate_loops
        self.match_fn = match_fn if match_fn is not None else decorrelate.match_join

    def compile(self, expr: CoreExpr) -> PlanNode:
        if isinstance(expr, Var):
            return VarNode(expr.name)
        if isinstance(expr, FnApp):
            args = tuple(self.compile(arg) for arg in expr.args)
            return FnNode(expr.fn, args, expr.params)
        if isinstance(expr, Let):
            return LetNode(expr.var, self.compile(expr.value),
                           self.compile(expr.body))
        if isinstance(expr, Where):
            return WhereNode(self.compile_condition(expr.condition),
                             self.compile(expr.body),
                             free_variables(expr.body))
        if isinstance(expr, For):
            return self.compile_for(expr)
        raise PlanError(f"cannot compile {type(expr).__name__}")

    def compile_for(self, loop: For) -> PlanNode:
        # Both strategies decorrelate: the paper's Q8 plans are identical
        # except for the join *operator* (nested-loop vs merge-sort pair
        # matching), so the path-extraction work is shared and only the
        # join differs.  Loops the rewrite cannot handle fall back to the
        # naive environment expansion under either strategy.
        if self.decorrelate_loops:
            match = self.match_fn(loop, self.base_vars)
            if match is not None:
                return self._compile_join(match)
        source = self.compile(loop.source)
        body = self.compile(loop.body)
        required = plan_free(body) - {loop.var}
        return ForNode(loop.var, source, body, frozenset(required))

    def _compile_join(self, match: decorrelate.JoinMatch) -> JoinForNode:
        source = self.compile(match.source)
        key_outer = self.compile(match.key_outer)
        key_inner = self.compile(match.key_inner)
        residual = (self.compile_condition(match.residual)
                    if match.residual is not None else None)
        inner: CoreExpr = match.return_expr
        if match.inner_residual is not None:
            inner = Where(match.inner_residual, inner)
        for var, value in reversed(match.let_spine):
            inner = Let(var, value, inner)
        body = self.compile(inner)
        # The syntactic plan conservatively copies the outer key's
        # variables into pair space as well; the optimization layer
        # prunes them (key_outer is evaluated on the enclosing sequence
        # before any pair is materialized), keeping this path a faithful
        # planning-off baseline.
        required = plan_free(body) | plan_free(key_outer)
        if residual is not None:
            required |= cond_free(residual)
        required -= {match.var}
        return JoinForNode(match.var, source, key_outer, key_inner, body,
                           residual, frozenset(required), match.existential,
                           self.strategy)

    def compile_condition(self, condition: Condition) -> CondPlan:
        if isinstance(condition, Empty):
            return EmptyCond(self.compile(condition.expr))
        if isinstance(condition, Equal):
            return EqualCond(self.compile(condition.left),
                             self.compile(condition.right))
        if isinstance(condition, SomeEqual):
            return SomeEqualCond(self.compile(condition.left),
                                 self.compile(condition.right))
        if isinstance(condition, Less):
            return LessCond(self.compile(condition.left),
                            self.compile(condition.right))
        if isinstance(condition, Not):
            return NotCond(self.compile_condition(condition.condition))
        if isinstance(condition, And):
            return AndCond(self.compile_condition(condition.left),
                           self.compile_condition(condition.right))
        if isinstance(condition, Or):
            return OrCond(self.compile_condition(condition.left),
                          self.compile_condition(condition.right))
        raise PlanError(f"cannot compile condition {type(condition).__name__}")


def plan_free(node: PlanNode) -> frozenset[str]:
    """Environment variables a plan reads from its *enclosing* sequence.

    ``JoinForNode`` sources and inner keys are read from the base
    environment, so their variables do not count — that exclusion is what
    lets the enclosing expansion skip copying the documents.
    """
    if isinstance(node, VarNode):
        return frozenset((node.name,))
    if isinstance(node, FnNode):
        result: frozenset[str] = frozenset()
        for arg in node.args:
            result |= plan_free(arg)
        return result
    if isinstance(node, LetNode):
        return plan_free(node.value) | (plan_free(node.body) - {node.var})
    if isinstance(node, WhereNode):
        return cond_free(node.condition) | plan_free(node.body)
    if isinstance(node, ForNode):
        return plan_free(node.source) | (plan_free(node.body) - {node.var})
    if isinstance(node, JoinForNode):
        result = plan_free(node.key_outer) | (plan_free(node.body) - {node.var})
        if node.residual is not None:
            result |= cond_free(node.residual) - {node.var}
        return result
    raise PlanError(f"unknown plan node {type(node).__name__}")


def cond_free(condition: CondPlan) -> frozenset[str]:
    """Environment variables a condition plan reads."""
    if isinstance(condition, EmptyCond):
        return plan_free(condition.expr)
    if isinstance(condition, (EqualCond, SomeEqualCond, LessCond)):
        return plan_free(condition.left) | plan_free(condition.right)
    if isinstance(condition, NotCond):
        return cond_free(condition.condition)
    if isinstance(condition, (AndCond, OrCond)):
        return cond_free(condition.left) | cond_free(condition.right)
    raise PlanError(f"unknown condition plan {type(condition).__name__}")


def _cardinality_suffix(node: PlanNode,
                        annotations: dict[int, cost.Estimate] | None) -> str:
    """`` — est N tuples`` / `` — est N → obs M tuples`` when annotated."""
    if not annotations:
        return ""
    estimate = annotations.get(id(node))
    if estimate is None:
        return ""
    if estimate.observed and estimate.predicted is not None:
        return (f"  — est {estimate.predicted:.0f} → "
                f"obs {estimate.tuples:.0f} tuples")
    return f"  — est {estimate.tuples:.0f} tuples"


def explain_plan(node: PlanNode, indent: int = 0,
                 annotations: dict[int, cost.Estimate] | None = None) -> str:
    """A readable multi-line rendering of a physical plan.

    ``annotations`` (``id(node) → Estimate``, as produced by
    :func:`optimize_plan`) appends estimated — and, after a traced run,
    observed — cardinalities to each node line.
    """
    pad = "  " * indent
    suffix = _cardinality_suffix(node, annotations)
    if isinstance(node, VarNode):
        return f"{pad}Var(${node.name}){suffix}"
    if isinstance(node, FnNode):
        params = ", ".join(f"{k}={v!r}" for k, v in node.params)
        header = f"{pad}Fn:{node.fn}" + (f"[{params}]" if params else "") + suffix
        if not node.args:
            return header
        children = "\n".join(explain_plan(arg, indent + 1, annotations)
                             for arg in node.args)
        return f"{header}\n{children}"
    if isinstance(node, LetNode):
        return (f"{pad}Let ${node.var}{suffix}\n"
                f"{explain_plan(node.value, indent + 1, annotations)}\n"
                f"{explain_plan(node.body, indent + 1, annotations)}")
    if isinstance(node, WhereNode):
        return (f"{pad}Where{suffix}\n"
                f"{_explain_cond(node.condition, indent + 1, annotations)}\n"
                f"{explain_plan(node.body, indent + 1, annotations)}")
    if isinstance(node, ForNode):
        required = ", ".join(sorted(node.required_outer)) or "-"
        return (f"{pad}For ${node.var} [nested-loop expansion; copies: {required}]"
                f"{suffix}\n"
                f"{explain_plan(node.source, indent + 1, annotations)}\n"
                f"{explain_plan(node.body, indent + 1, annotations)}")
    if isinstance(node, JoinForNode):
        required = ", ".join(sorted(node.required_outer)) or "-"
        operator = ("structural merge join"
                    if node.strategy is JoinStrategy.MSJ
                    else "nested-loop join")
        markers = [operator]
        if node.isolate:
            markers.append("isolated body")
        markers.append(f"copies: {required}")
        lines = [
            f"{pad}JoinFor ${node.var} [{'; '.join(markers)}]{suffix}",
            f"{pad}  source (base env):",
            explain_plan(node.source, indent + 2, annotations),
            f"{pad}  key (outer):",
            explain_plan(node.key_outer, indent + 2, annotations),
            f"{pad}  key (inner):",
            explain_plan(node.key_inner, indent + 2, annotations),
        ]
        if node.inner_filter is not None:
            lines.append(f"{pad}  inner filter (pushed below join):")
            lines.append(_explain_cond(node.inner_filter, indent + 2,
                                       annotations))
        if node.residual is not None:
            lines.append(f"{pad}  residual:")
            lines.append(_explain_cond(node.residual, indent + 2, annotations))
        lines.append(f"{pad}  body:")
        lines.append(explain_plan(node.body, indent + 2, annotations))
        return "\n".join(lines)
    raise PlanError(f"unknown plan node {type(node).__name__}")


def _explain_cond(condition: CondPlan, indent: int,
                  annotations: dict[int, cost.Estimate] | None = None) -> str:
    pad = "  " * indent
    if isinstance(condition, EmptyCond):
        return (f"{pad}Empty\n"
                f"{explain_plan(condition.expr, indent + 1, annotations)}")
    if isinstance(condition, EqualCond):
        return (f"{pad}Equal\n"
                f"{explain_plan(condition.left, indent + 1, annotations)}\n"
                f"{explain_plan(condition.right, indent + 1, annotations)}")
    if isinstance(condition, SomeEqualCond):
        return (f"{pad}SomeEqual\n"
                f"{explain_plan(condition.left, indent + 1, annotations)}\n"
                f"{explain_plan(condition.right, indent + 1, annotations)}")
    if isinstance(condition, LessCond):
        return (f"{pad}Less\n"
                f"{explain_plan(condition.left, indent + 1, annotations)}\n"
                f"{explain_plan(condition.right, indent + 1, annotations)}")
    if isinstance(condition, NotCond):
        return (f"{pad}Not\n"
                f"{_explain_cond(condition.condition, indent + 1, annotations)}")
    if isinstance(condition, AndCond):
        return (f"{pad}And\n"
                f"{_explain_cond(condition.left, indent + 1, annotations)}\n"
                f"{_explain_cond(condition.right, indent + 1, annotations)}")
    if isinstance(condition, OrCond):
        return (f"{pad}Or\n"
                f"{_explain_cond(condition.left, indent + 1, annotations)}\n"
                f"{_explain_cond(condition.right, indent + 1, annotations)}")
    raise PlanError(f"unknown condition plan {type(condition).__name__}")


# -- the cost-based optimization layer ----------------------------------------


@dataclass
class OptimizedPlan:
    """A physical plan plus the cost-model evidence it was built from.

    ``annotations`` maps ``id(plan node)`` to its cardinality estimate;
    ``fingerprints`` maps ``id(plan node)`` to a *stable* fingerprint —
    the node's pre-order position in the unoptimized plan, carried
    through every rewrite — which is what lets observed tuple counts
    from engine spans feed back into the next planning round for the
    same query shape.
    """

    plan: PlanNode
    annotations: dict[int, cost.Estimate] = field(default_factory=dict)
    fingerprints: dict[int, int] = field(default_factory=dict)
    estimates_by_fp: dict[int, float] = field(default_factory=dict)
    observed_based: frozenset[int] = frozenset()
    decisions: tuple[str, ...] = ()
    reorders: int = 0
    isolations: int = 0
    pushdowns: int = 0

    def explain(self) -> str:
        return explain_plan(self.plan, annotations=self.annotations)


#: Isolation pays off once at least this fraction of (filtered) inner
#: environments is expected to appear in some matched pair — below that,
#: evaluating the body once per inner environment does more work than
#: evaluating it per pair.
ISOLATION_MATCH_FRACTION = 0.25

#: Hysteresis for join interchange: the swapped-in join must look at
#: least this much cheaper before the planner reorders.
INTERCHANGE_MARGIN = 0.8


def optimize_plan(plan: PlanNode, model: cost.CostModel | None = None,
                  base_vars: Iterable[str] = ()) -> OptimizedPlan:
    """Cost-order a compiled plan and annotate it with cardinalities.

    Rewrites applied, every one cost-gated and semantics-preserving:

    * **select pushdown** — residual conjuncts over the join variable
      alone sink below the join (``inner_filter``), so non-matching inner
      environments are dropped before any pair is materialized;
    * **join-body isolation** (Grust et al.) — when a join body reads
      only the join variable it runs once on the inner expansion and the
      finished blocks are gathered into the pairs, keeping intermediate
      endpoints in the small inner index space (predicted int64 overflow
      forces this on; otherwise a matched-inner-fraction threshold);
    * **conjunct reordering** — ``where`` and residual conjunctions are
      evaluated cheapest-first (set intersection is order-insensitive);
    * **join interchange** — adjacent independent joins swap so the more
      selective one runs first, only under order-insensitive consumers
      (``count``, whose value cannot depend on block-internal order).
    """
    model = model if model is not None else cost.CostModel()
    return _Optimizer(model, base_vars, plan).run(plan)


@dataclass(frozen=True)
class _Env:
    """Estimation context while walking a plan: the current sequence."""

    envs: float                       #: estimated environment count
    index_bound: int                  #: exclusive bound on env indexes
    scope: dict                       #: var → per-environment Estimate
    unordered: bool = False           #: consumer ignores in-block order


class _Optimizer:
    def __init__(self, model: cost.CostModel, base_vars: Iterable[str],
                 plan: PlanNode):
        self.model = model
        self._fps: dict[int, int] = {}
        for position, node in enumerate(iter_plan(plan)):
            self._fps.setdefault(id(node), position)
        # Nodes synthesized mid-walk must stay alive so their ids stay
        # unique for the duration of the optimization.
        self._keep: list[PlanNode] = [plan]
        self.annotations: dict[int, cost.Estimate] = {}
        self.fingerprints: dict[int, int] = {}
        self.estimates_by_fp: dict[int, float] = {}
        self.observed_based: set[int] = set()
        self.decisions: list[str] = []
        self.reorders = 0
        self.isolations = 0
        self.pushdowns = 0
        base_scope = {name: model.base(name) for name in base_vars}
        self._base_env = _Env(envs=1.0, index_bound=1, scope=base_scope)

    def run(self, plan: PlanNode) -> OptimizedPlan:
        optimized, _est = self._walk(plan, self._base_env)
        return OptimizedPlan(
            plan=optimized,
            annotations=self.annotations,
            fingerprints=self.fingerprints,
            estimates_by_fp=self.estimates_by_fp,
            observed_based=frozenset(self.observed_based),
            decisions=tuple(self.decisions),
            reorders=self.reorders,
            isolations=self.isolations,
            pushdowns=self.pushdowns,
        )

    # -- bookkeeping ------------------------------------------------------------------

    def _note(self, original: PlanNode, rebuilt: PlanNode,
              estimate: cost.Estimate) -> cost.Estimate:
        """Record a node's estimate (observed-corrected) and fingerprint."""
        fingerprint = self._fps.get(id(original))
        if fingerprint is not None:
            estimate = self.model.observe(fingerprint, estimate)
            self.fingerprints[id(rebuilt)] = fingerprint
            self.estimates_by_fp[fingerprint] = estimate.tuples
            if estimate.observed:
                self.observed_based.add(fingerprint)
        self.annotations[id(rebuilt)] = estimate
        return estimate

    # -- the walk ---------------------------------------------------------------------

    def _walk(self, node: PlanNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        if isinstance(node, VarNode):
            per_env = env.scope.get(node.name)
            if per_env is None:
                per_env = self.model.base(node.name)
            estimate = self._note(node, node, per_env.scaled(env.envs))
            return node, estimate
        if isinstance(node, FnNode):
            return self._walk_fn(node, env)
        if isinstance(node, LetNode):
            return self._walk_let(node, env)
        if isinstance(node, WhereNode):
            return self._walk_where(node, env)
        if isinstance(node, ForNode):
            return self._walk_for(node, env)
        if isinstance(node, JoinForNode):
            return self._walk_join(node, env)
        raise PlanError(f"unknown plan node {type(node).__name__}")

    def _walk_fn(self, node: FnNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        child_env = env
        if node.fn == "count":
            # count() reads per-environment root counts, which cannot
            # depend on the order of trees within a block — everything
            # below may be freely reordered.
            child_env = dataclasses.replace(env, unordered=True)
        new_args: list[PlanNode] = []
        arg_estimates: list[cost.Estimate] = []
        for arg in node.args:
            new_arg, arg_estimate = self._walk(arg, child_env)
            new_args.append(new_arg)
            arg_estimates.append(arg_estimate)
        if all(new is old for new, old in zip(new_args, node.args)):
            rebuilt: PlanNode = node
        else:
            rebuilt = FnNode(node.fn, tuple(new_args), node.params)
        estimate = self.model.apply_fn(node.fn, node.params, arg_estimates,
                                       env.envs)
        estimate = self._note(node, rebuilt, estimate)
        return rebuilt, estimate

    def _walk_let(self, node: LetNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        new_value, value_estimate = self._walk(node.value, env)
        scope = dict(env.scope)
        scope[node.var] = value_estimate.scaled(1.0 / max(env.envs, 1.0))
        new_body, body_estimate = self._walk(
            node.body, dataclasses.replace(env, scope=scope))
        if new_value is node.value and new_body is node.body:
            rebuilt: PlanNode = node
        else:
            rebuilt = LetNode(node.var, new_value, new_body)
        estimate = self._note(node, rebuilt, body_estimate)
        return rebuilt, estimate

    def _walk_where(self, node: WhereNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        conjuncts = joingraph.split_conjuncts(node.condition)
        ordered, selectivity, changed = self._order_conjuncts(conjuncts, env)
        if changed:
            self.reorders += 1
            self.decisions.append("reordered where-conjuncts cheapest-first")
        condition = joingraph.merge_conjuncts(ordered)
        body_env = dataclasses.replace(env, envs=env.envs * selectivity)
        new_body, body_estimate = self._walk(node.body, body_env)
        rebuilt = WhereNode(condition, new_body, plan_free(new_body))
        estimate = self._note(node, rebuilt, body_estimate)
        return rebuilt, estimate

    def _walk_for(self, node: ForNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        new_source, source_estimate = self._walk(node.source, env)
        trees = source_estimate.trees
        per_env = cost.Estimate(
            tuples=source_estimate.tuples / max(trees, 1.0), trees=1.0,
            width=source_estimate.width, stats=source_estimate.stats)
        scope = dict(env.scope)
        scope[node.var] = per_env
        body_env = _Env(envs=trees,
                        index_bound=env.index_bound
                        * max(source_estimate.width, 1),
                        scope=scope, unordered=env.unordered)
        new_body, body_estimate = self._walk(node.body, body_env)
        required = frozenset(plan_free(new_body) - {node.var})
        if (new_source is node.source and new_body is node.body
                and required == node.required_outer):
            rebuilt: PlanNode = node
        else:
            rebuilt = ForNode(node.var, new_source, new_body, required)
        estimate = cost.Estimate(
            tuples=body_estimate.tuples, trees=body_estimate.trees,
            width=source_estimate.width * body_estimate.width)
        estimate = self._note(node, rebuilt, estimate)
        return rebuilt, estimate

    def _walk_join(self, node: JoinForNode, env: _Env) -> tuple[PlanNode, cost.Estimate]:
        swapped = self._maybe_interchange(node, env)
        if swapped is not None:
            self.reorders += 1
            self.decisions.append(
                f"interchanged join ${node.var} below ${swapped.var} "
                f"(more selective join first)")
            node = swapped
        analysis = joingraph.analyze_join(node)

        new_source, source_estimate = self._walk(node.source, self._base_env)
        source_width = max(source_estimate.width, 1)
        inner_trees = source_estimate.trees
        per_env = cost.Estimate(
            tuples=source_estimate.tuples / max(inner_trees, 1.0), trees=1.0,
            width=source_estimate.width, stats=source_estimate.stats)

        key_unordered = node.existential  # SomeEqual keys are per-tree sets
        inner_scope = dict(self._base_env.scope)
        inner_scope[node.var] = per_env
        inner_env = _Env(envs=inner_trees, index_bound=source_width,
                         scope=inner_scope, unordered=key_unordered)
        new_key_inner, _ = self._walk(node.key_inner, inner_env)
        new_key_outer, _ = self._walk(
            node.key_outer, dataclasses.replace(env, unordered=key_unordered))

        # Select pushdown: var-only residual conjuncts filter the inner
        # expansion before matching (non-matching environments never pair).
        inner_conjuncts = (joingraph.split_conjuncts(node.inner_filter)
                           + list(analysis.inner_conjuncts))
        if analysis.inner_conjuncts:
            self.pushdowns += len(analysis.inner_conjuncts)
            self.decisions.append(
                f"pushed {len(analysis.inner_conjuncts)} residual "
                f"conjunct(s) below join ${node.var}")
        ordered_inner, inner_selectivity, inner_changed = \
            self._order_conjuncts(inner_conjuncts, inner_env)
        if inner_changed:
            self.reorders += 1
        filtered_inner = inner_trees * (inner_selectivity
                                        if inner_conjuncts else 1.0)

        pairs = self.model.join_pairs(env.envs, filtered_inner,
                                      node.existential)
        pair_bound = env.index_bound * source_width
        pair_scope = dict(env.scope)
        pair_scope[node.var] = per_env
        pair_env = _Env(envs=pairs, index_bound=pair_bound, scope=pair_scope,
                        unordered=env.unordered)
        ordered_residual, residual_selectivity, residual_changed = \
            self._order_conjuncts(list(analysis.residual_conjuncts), pair_env)
        if residual_changed:
            self.reorders += 1
            self.decisions.append(
                f"reordered residual conjuncts of join ${node.var}")
        final_pairs = pairs * (residual_selectivity
                               if analysis.residual_conjuncts else 1.0)

        # Isolation decision: forced when the pair index space would push
        # interval endpoints past int64 (bignum-fallback cliff), chosen
        # when enough of the inner side is expected to match anyway.
        body_width = self._probe_width(
            node.body, {name: est.width for name, est in pair_scope.items()})
        overflow = cost.predict_overflow(pair_bound,
                                         source_width * max(body_width, 1))
        matched_fraction = (pairs / filtered_inner) if filtered_inner else 0.0
        isolate = analysis.isolable and (
            overflow or matched_fraction >= ISOLATION_MATCH_FRACTION)
        if isolate:
            self.isolations += 1
            reason = ("predicted int64 overflow" if overflow
                      else f"matched-inner fraction ~{matched_fraction:.2f}")
            self.decisions.append(
                f"isolated body of join ${node.var} ({reason})")

        if isolate:
            body_scope = dict(env.scope)
            body_scope[node.var] = per_env
            body_env = _Env(envs=filtered_inner, index_bound=source_width,
                            scope=body_scope, unordered=env.unordered)
        else:
            body_env = dataclasses.replace(pair_env, envs=final_pairs)
        new_body, body_estimate = self._walk(node.body, body_env)

        required = set(plan_free(new_body))
        for conjunct in ordered_residual:
            required |= cond_free(conjunct)
        required.discard(node.var)

        rebuilt = JoinForNode(
            node.var, new_source, new_key_outer, new_key_inner, new_body,
            joingraph.merge_conjuncts(ordered_residual), frozenset(required),
            node.existential, node.strategy,
            joingraph.merge_conjuncts(ordered_inner), isolate)
        self._keep.append(rebuilt)

        if isolate:
            scale = final_pairs / max(filtered_inner, 1.0)
            result_tuples = body_estimate.tuples * scale
            result_trees = body_estimate.trees * scale
        else:
            result_tuples = body_estimate.tuples
            result_trees = body_estimate.trees
        estimate = cost.Estimate(
            tuples=result_tuples, trees=result_trees,
            width=source_estimate.width * body_estimate.width)
        estimate = self._note(node, rebuilt, estimate)
        return rebuilt, estimate

    # -- conjunct ordering ------------------------------------------------------------

    def _order_conjuncts(self, conjuncts: list[CondPlan], env: _Env,
                         ) -> tuple[list[CondPlan], float, bool]:
        """Walk, rank, and sort conjuncts cheapest-first.

        Returns the reordered conjuncts, their combined selectivity, and
        whether the order changed.  Conjunction evaluation intersects
        environment-index sets, so order never affects the result — only
        how soon the evaluator can short-circuit.
        """
        if not conjuncts:
            return [], 1.0, False
        walked = [self._walk_cond(conjunct, env) for conjunct in conjuncts]
        ranked = sorted(range(len(walked)), key=lambda i: walked[i][1])
        changed = ranked != list(range(len(walked)))
        selectivity = 1.0
        for _cond, _rank, conjunct_selectivity in walked:
            selectivity *= conjunct_selectivity
        return [walked[i][0] for i in ranked], selectivity, changed

    def _walk_cond(self, condition: CondPlan, env: _Env,
                   ) -> tuple[CondPlan, float, float]:
        """Walk one condition; returns (rebuilt, rank, selectivity)."""
        if isinstance(condition, EmptyCond):
            # Emptiness only reads block occupancy — order-insensitive.
            new_expr, estimate = self._walk(
                condition.expr, dataclasses.replace(env, unordered=True))
            rebuilt = (condition if new_expr is condition.expr
                       else EmptyCond(new_expr))
            return (rebuilt, self.model.condition_rank("Empty", estimate.tuples),
                    self.model.condition_selectivity("Empty"))
        if isinstance(condition, (EqualCond, SomeEqualCond, LessCond)):
            kind = type(condition).__name__.removesuffix("Cond")
            # SomeEqual compares per-tree key *sets*; Equal/Less compare
            # canonical forest keys, which depend on tree order.
            operand_env = dataclasses.replace(env,
                                              unordered=kind == "SomeEqual")
            new_left, left_estimate = self._walk(condition.left, operand_env)
            new_right, right_estimate = self._walk(condition.right, operand_env)
            if new_left is condition.left and new_right is condition.right:
                rebuilt = condition
            else:
                rebuilt = type(condition)(new_left, new_right)
            rank = self.model.condition_rank(
                kind, left_estimate.tuples + right_estimate.tuples)
            return rebuilt, rank, self.model.condition_selectivity(kind)
        if isinstance(condition, NotCond):
            inner, rank, selectivity = self._walk_cond(condition.condition, env)
            rebuilt = (condition if inner is condition.condition
                       else NotCond(inner))
            return rebuilt, rank, max(1.0 - selectivity, 0.05)
        if isinstance(condition, AndCond):
            left, left_rank, left_sel = self._walk_cond(condition.left, env)
            right, right_rank, right_sel = self._walk_cond(condition.right, env)
            if left is condition.left and right is condition.right:
                rebuilt = condition
            else:
                rebuilt = AndCond(left, right)
            return rebuilt, left_rank + right_rank, left_sel * right_sel
        if isinstance(condition, OrCond):
            left, left_rank, left_sel = self._walk_cond(condition.left, env)
            right, right_rank, right_sel = self._walk_cond(condition.right, env)
            if left is condition.left and right is condition.right:
                rebuilt = condition
            else:
                rebuilt = OrCond(left, right)
            selectivity = 1.0 - (1.0 - left_sel) * (1.0 - right_sel)
            return rebuilt, left_rank + right_rank, selectivity
        raise PlanError(f"unknown condition plan {type(condition).__name__}")

    # -- join interchange -------------------------------------------------------------

    def _maybe_interchange(self, node: JoinForNode,
                           env: _Env) -> JoinForNode | None:
        """Swap two adjacently nested independent joins, selective first.

        Loop interchange permutes the order of iteration pairs inside the
        enclosing block, so it is only offered when the consumer is
        provably order-insensitive (``env.unordered``), and only when the
        inner join's graph half is independent of the outer variable.
        """
        if not env.unordered:
            return None
        inner = node.body
        if not isinstance(inner, JoinForNode):
            return None
        references = plan_free(inner.key_outer)
        if inner.residual is not None:
            references |= cond_free(inner.residual)
        if inner.inner_filter is not None:
            references |= cond_free(inner.inner_filter)
        if node.var in references:
            return None
        outer_trees = cost.weigh(node.source, self.model).trees
        inner_trees = cost.weigh(inner.source, self.model).trees
        outer_pairs = self.model.join_pairs(env.envs, outer_trees,
                                            node.existential)
        inner_pairs = self.model.join_pairs(env.envs, inner_trees,
                                            inner.existential)
        if inner_pairs >= outer_pairs * INTERCHANGE_MARGIN:
            return None
        new_inner = JoinForNode(
            node.var, node.source, node.key_outer, node.key_inner, inner.body,
            node.residual, node.required_outer, node.existential,
            node.strategy, node.inner_filter, node.isolate)
        new_outer = JoinForNode(
            inner.var, inner.source, inner.key_outer, inner.key_inner,
            new_inner, inner.residual, inner.required_outer, inner.existential,
            inner.strategy, inner.inner_filter, inner.isolate)
        self._keep.extend((new_inner, new_outer))
        fp_inner = self._fps.get(id(inner))
        fp_outer = self._fps.get(id(node))
        if fp_inner is not None:
            self._fps[id(new_outer)] = fp_inner
        if fp_outer is not None:
            self._fps[id(new_inner)] = fp_outer
        return new_outer

    # -- static width probing ---------------------------------------------------------

    def _probe_width(self, node: PlanNode, widths: dict[str, int]) -> int:
        """The exact static output width of ``node`` (engine arithmetic)."""
        if isinstance(node, VarNode):
            if node.name in widths:
                return widths[node.name]
            return self.model.base(node.name).width
        if isinstance(node, FnNode):
            fn = node.fn
            if fn == "empty_forest":
                return 0
            if fn in ("text_const", "count", "string_fn"):
                return 2
            if fn == "concat":
                return (self._probe_width(node.args[0], widths)
                        + self._probe_width(node.args[1], widths))
            width = self._probe_width(node.args[0], widths)
            if fn == "xnode":
                return width + 2
            if fn in ("subtrees_dfs", "sort"):
                return width * width
            return width
        if isinstance(node, LetNode):
            extended = dict(widths)
            extended[node.var] = self._probe_width(node.value, widths)
            return self._probe_width(node.body, extended)
        if isinstance(node, WhereNode):
            return self._probe_width(node.body, widths)
        if isinstance(node, (ForNode, JoinForNode)):
            source_width = self._probe_width(node.source, widths)
            extended = dict(widths)
            extended[node.var] = source_width
            return source_width * self._probe_width(node.body, extended)
        raise PlanError(f"unknown plan node {type(node).__name__}")
