"""Unit tests for the XML text parser."""

import pytest

from repro.errors import XMLParseError
from repro.xml.forest import element, text
from repro.xml.text_parser import parse_document, parse_forest


class TestBasicParsing:
    def test_empty_element(self):
        assert parse_forest("<a/>") == (element("a"),)

    def test_element_with_text(self):
        assert parse_forest("<a>hello</a>") == (element("a", (text("hello"),)),)

    def test_nested_elements(self):
        trees = parse_forest("<a><b/><c/></a>")
        assert [child.label for child in trees[0].children] == ["<b>", "<c>"]

    def test_multiple_top_level_trees(self):
        trees = parse_forest("<a/><b/>")
        assert [tree.label for tree in trees] == ["<a>", "<b>"]

    def test_empty_input(self):
        assert parse_forest("") == ()

    def test_whitespace_only(self):
        assert parse_forest("  \n\t ") == ()

    def test_mixed_content_preserved(self):
        trees = parse_forest("<a>x<b/>y</a>")
        labels = [child.label for child in trees[0].children]
        assert labels == ["x", "<b>", "y"]

    def test_whitespace_only_text_stripped_by_default(self):
        trees = parse_forest("<a> <b/> </a>")
        labels = [child.label for child in trees[0].children]
        assert labels == ["<b>"]

    def test_whitespace_preserved_on_request(self):
        trees = parse_forest("<a> <b/> </a>", strip_whitespace=False)
        labels = [child.label for child in trees[0].children]
        assert labels == [" ", "<b>", " "]

    def test_meaningful_whitespace_in_mixed_content_kept(self):
        trees = parse_forest("<a>x <b/></a>")
        labels = [child.label for child in trees[0].children]
        assert labels == ["x ", "<b>"]


class TestAttributes:
    def test_attribute_becomes_at_node(self):
        trees = parse_forest('<a id="x"/>')
        attr = trees[0].children[0]
        assert attr.label == "@id"
        assert attr.children[0].label == "x"

    def test_attributes_precede_content(self):
        trees = parse_forest('<a id="x">body</a>')
        labels = [child.label for child in trees[0].children]
        assert labels == ["@id", "body"]

    def test_single_quoted_attribute(self):
        trees = parse_forest("<a id='x'/>")
        assert trees[0].children[0].children[0].label == "x"

    def test_multiple_attributes_in_order(self):
        trees = parse_forest('<a x="1" y="2" z="3"/>')
        labels = [child.label for child in trees[0].children]
        assert labels == ["@x", "@y", "@z"]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_forest('<a id="1" id="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_forest("<a id=x/>")

    def test_attribute_entity(self):
        trees = parse_forest('<a t="&lt;&amp;&gt;"/>')
        assert trees[0].children[0].children[0].label == "<&>"


class TestEntitiesAndCData:
    @pytest.mark.parametrize("entity,expected", [
        ("&lt;", "<"), ("&gt;", ">"), ("&amp;", "&"),
        ("&apos;", "'"), ("&quot;", '"'),
        ("&#65;", "A"), ("&#x41;", "A"),
    ])
    def test_entities(self, entity, expected):
        trees = parse_forest(f"<a>{entity}</a>")
        assert trees[0].children[0].label == expected

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_forest("<a>&nope;</a>")

    def test_cdata(self):
        trees = parse_forest("<a><![CDATA[<raw>&stuff;]]></a>")
        assert trees[0].children[0].label == "<raw>&stuff;"

    def test_comments_skipped(self):
        trees = parse_forest("<a><!-- comment -->x</a>")
        assert [child.label for child in trees[0].children] == ["x"]

    def test_processing_instruction_skipped(self):
        trees = parse_forest('<?xml version="1.0"?><a/>')
        assert trees[0].label == "<a>"

    def test_doctype_skipped(self):
        trees = parse_forest("<!DOCTYPE site SYSTEM 'x.dtd'><a/>")
        assert trees[0].label == "<a>"


class TestErrors:
    @pytest.mark.parametrize("source", [
        "<a>",                 # unclosed
        "<a></b>",             # mismatched close
        "<a><b></a></b>",      # crossed nesting
        "<a attr=></a>",       # missing value
        "<1a/>",               # bad name start
        "text only <",         # dangling <
        "<a>&unterminated",    # entity never closed
    ])
    def test_malformed_rejected(self, source):
        with pytest.raises(XMLParseError):
            parse_forest(source)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_forest("<a></b>")
        assert excinfo.value.position is not None


class TestParseDocument:
    def test_single_root(self):
        root = parse_document("<a><b/></a>")
        assert root.label == "<a>"

    def test_zero_roots_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("   ")

    def test_two_roots_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/><b/>")


class TestFigure1:
    def test_figure1_parses(self, figure1_doc):
        assert figure1_doc.label == "<site>"
        assert [c.label for c in figure1_doc.children] == [
            "<people>", "<closed_auctions>",
        ]

    def test_figure1_node_count(self, figure1_doc):
        # Figure 4's encoding covers 43 nodes — width 86 with the DFS
        # counter, exactly as printed in the paper.
        assert figure1_doc.size == 43

    def test_figure1_person_ids(self, figure1_doc):
        people = figure1_doc.children[0]
        ids = [
            person.children[0].children[0].label
            for person in people.children
        ]
        assert ids == ["person0", "person1"]
