"""The live introspection endpoint: ``/metrics``, ``/healthz``,
``/debug/queries`` on a stdlib :class:`ThreadingHTTPServer`.

A :class:`TelemetryServer` wraps one session (anything exposing
``metrics``, ``recorder``, and ``health()`` — duck-typed so this module
never imports :mod:`repro.session`) and serves:

* ``/metrics`` — the session registry in Prometheus text format
  (:func:`repro.obs.export.render_prometheus`), flight-recorder latency
  histograms and SLO burn gauges included;
* ``/healthz`` — :meth:`XQuerySession.health`: circuit-breaker states,
  worker-pool gauges, admission-control snapshot, documents, recorder
  counters.  HTTP 200 while the instance should keep taking traffic
  (``status`` ``ok`` or ``degraded``), HTTP 503 when a load balancer
  should rotate it out (``shedding`` — admission control refusing work —
  or ``unavailable`` — every backend's breaker open).  503 responses
  carry a ``Retry-After`` header derived from the admission
  controller's ``retry_after`` hint (rounded up to whole seconds);
* ``/debug/queries`` — the flight recorder's ring buffer as JSON, plus
  the percentile table and SLO status.  Filters: ``?outcome=error``,
  ``?sampled=true``, ``?limit=50``, ``?traces=false`` (drop span trees
  from the payload).

Start it with ``session.serve_telemetry(port=…)`` or the CLI's
``--serve-telemetry PORT``; ``python -m repro top URL`` renders a
running server's percentile table in the terminal
(:func:`render_top`).  Requests are handled on daemon threads, so a
scrape can never block query traffic; handler access goes through the
recorder's lock-protected snapshot methods, so a concurrent reader
never observes a torn record.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Protocol, runtime_checkable
from urllib.parse import parse_qs, urlparse

from repro.obs.export import render_prometheus
from repro.obs.flight import FlightRecorder, render_percentile_table
from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger("repro.serve")

#: Content type Prometheus scrapers expect from a text-format endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

ENDPOINTS = ("/metrics", "/healthz", "/debug/queries")

#: ``health()["status"]`` values that flip ``/healthz`` to HTTP 503.
UNHEALTHY_STATUSES = ("shedding", "unavailable")


@runtime_checkable
class TelemetrySource(Protocol):
    """What a served session must provide (duck-typed, no import cycle)."""

    metrics: MetricsRegistry
    recorder: FlightRecorder | None

    def health(self) -> dict[str, object]: ...


class TelemetryServer:
    """One session's introspection HTTP server (daemon-threaded).

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`port` after :meth:`start`.  The server is a context manager
    and :meth:`stop` is idempotent.
    """

    def __init__(self, session: TelemetrySource,
                 host: str = "127.0.0.1", port: int = 0):
        self.session = session
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self.session)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry", daemon=True)
        self._thread.start()
        logger.info("telemetry server listening on %s", self.url)
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        logger.info("telemetry server stopped")

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = self.url if self.running else "stopped"
        return f"<TelemetryServer {state}>"


def _make_handler(session: TelemetrySource):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-telemetry"
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: object) -> None:
            # Route access logs into the repro hierarchy instead of stderr.
            logger.debug("%s %s", self.address_string(), format % args)

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            try:
                self._route()
            except BrokenPipeError:  # client went away mid-reply
                pass
            except Exception as error:  # one bad request must not kill serving
                logger.exception("telemetry handler failed for %s", self.path)
                try:
                    self._json(500, {"error": type(error).__name__,
                                     "detail": str(error)})
                except Exception:
                    pass

        def _route(self) -> None:
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                body = render_prometheus(session.metrics).encode("utf-8")
                self._reply(200, body, PROMETHEUS_CONTENT_TYPE)
            elif route == "/healthz":
                health = session.health()
                status = 503 if health.get("status") in UNHEALTHY_STATUSES \
                    else 200
                headers = None
                if status == 503:
                    hint = _retry_after_header(health)
                    if hint is not None:
                        headers = {"Retry-After": hint}
                self._json(status, health, headers=headers)
            elif route == "/debug/queries":
                self._debug_queries(parse_qs(parsed.query))
            elif route == "/":
                self._json(200, {"endpoints": list(ENDPOINTS)})
            else:
                self._json(404, {"error": f"unknown path {parsed.path!r}",
                                 "endpoints": list(ENDPOINTS)})

        def _debug_queries(self, query: dict[str, list[str]]) -> None:
            recorder = session.recorder
            if recorder is None:
                self._json(404, {
                    "error": "flight recorder disabled "
                             "(session built with record=False)"})
                return
            outcome = _first(query, "outcome")
            sampled = _parse_bool(_first(query, "sampled"))
            traces = _parse_bool(_first(query, "traces"))
            limit_text = _first(query, "limit")
            try:
                limit = int(limit_text) if limit_text is not None else None
            except ValueError:
                self._json(400, {"error": f"bad limit {limit_text!r}"})
                return
            payload = {
                "stats": recorder.stats(),
                "slos": recorder.slo_status(),
                "percentiles": recorder.percentiles(),
                "records": recorder.snapshot(
                    outcome=outcome, sampled=sampled, limit=limit,
                    include_traces=traces if traces is not None else True),
            }
            self._json(200, payload)

        def _json(self, status: int, payload: object,
                  headers: "dict[str, str] | None" = None) -> None:
            body = json.dumps(payload, indent=1, sort_keys=True,
                              default=str).encode("utf-8")
            self._reply(status, body, "application/json; charset=utf-8",
                        headers=headers)

        def _reply(self, status: int, body: bytes, content_type: str,
                   headers: "dict[str, str] | None" = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

    return Handler


def _retry_after_header(health: dict[str, object]) -> str | None:
    """The admission controller's retry hint as RFC 9110 delta-seconds.

    ``Retry-After`` is integer seconds; sub-second hints round *up* so a
    compliant client never retries before the hinted instant.
    """
    admission = health.get("admission")
    if not isinstance(admission, dict):
        return None
    hint = admission.get("retry_after")
    if not isinstance(hint, (int, float)) or hint <= 0:
        return None
    return str(max(1, math.ceil(hint)))


def _first(query: dict[str, list[str]], key: str) -> str | None:
    values = query.get(key)
    return values[0] if values else None


def _parse_bool(text: str | None) -> bool | None:
    if text is None:
        return None
    return text.strip().lower() in ("1", "true", "yes", "on")


# -- the `repro top` console view ---------------------------------------------

def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET ``url`` and decode the JSON body (stdlib urllib)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def render_top(payload: dict) -> str:
    """The ``/debug/queries`` payload as a one-shot console summary."""
    lines: list[str] = []
    stats = payload.get("stats", {})
    lines.append(
        f"flight recorder: {stats.get('recorded_total', 0)} recorded, "
        f"{stats.get('tail_sampled_total', 0)} tail-sampled, "
        f"{stats.get('buffered', 0)}/{stats.get('capacity', 0)} buffered "
        f"(slow ≥ {stats.get('slow_seconds', '?')}s)")
    outcomes = stats.get("outcomes") or {}
    if outcomes:
        rendered = ", ".join(f"{name}={count}" for name, count
                             in sorted(outcomes.items()))
        lines.append(f"outcomes: {rendered}")
    for slo in payload.get("slos", ()):
        lines.append(
            f"slo {slo.get('name')}: target {slo.get('target_seconds')}s "
            f"@ {slo.get('objective')}, {slo.get('violations', 0)}/"
            f"{slo.get('queries', 0)} violations, "
            f"burn rate {slo.get('burn_rate', 0.0)}")
    lines.append("")
    lines.append(render_percentile_table(payload.get("percentiles", [])))
    sampled = [record for record in payload.get("records", ())
               if record.get("sampled")]
    if sampled:
        lines.append("")
        lines.append(f"last tail-sampled queries ({len(sampled)}):")
        for record in sampled[-5:]:
            lines.append(
                f"  #{record.get('seq')} {record.get('outcome'):<9}"
                f"{record.get('wall_ms', 0.0):>10.2f} ms  "
                f"{','.join(record.get('sample_reasons', ()))}  "
                f"{str(record.get('query', ''))[:60]}")
    return "\n".join(lines)


def run_top(url: str) -> str:
    """Fetch a live server's recorder state and render it (CLI ``top``).

    ``url`` may be a full endpoint, a server base URL, or ``HOST:PORT``
    — anything short of the full ``/debug/queries`` path is completed.
    """
    target = url
    if "://" not in target:
        target = f"http://{target}"
    if "/debug/queries" not in target:
        target = target.rstrip("/") + "/debug/queries?traces=false"
    return render_top(fetch_json(target))
